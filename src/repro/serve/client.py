"""Thin stdlib client for the ``repro serve`` HTTP API.

:class:`ServeClient` wraps the four verbs a caller needs — ``submit``,
``poll``, ``result`` and the blocking convenience ``run`` (submit,
honour backpressure, poll to completion, fetch).  Errors map to typed
exceptions so callers can distinguish "try again later"
(:class:`Backpressure`) from "the request is wrong"
(:class:`ClientError`) from "the simulation failed" (:class:`JobFailed`).
"""

from __future__ import annotations

import contextlib
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Optional

__all__ = [
    "Backpressure",
    "ClientError",
    "JobFailed",
    "ServeClient",
]

#: Poll backoff tuning for :meth:`ServeClient.run`: first wait, cap,
#: growth factor, and the jitter band (each delay is scaled by a
#: uniform draw from [JITTER_LOW, 1.0] so synchronized clients spread
#: out instead of polling in lockstep).
POLL_INITIAL_S = 0.02
POLL_MAX_S = 1.0
POLL_GROWTH = 2.0
POLL_JITTER_LOW = 0.5


class ClientError(RuntimeError):
    """The server rejected the request (4xx other than 429)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class Backpressure(RuntimeError):
    """The server asked us to retry later (HTTP 429 / 503)."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"server busy; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class JobFailed(RuntimeError):
    """The simulation behind a job key failed server-side."""


class ServeClient:
    """HTTP client for one service endpoint.

    Args:
        base_url: e.g. ``http://127.0.0.1:8731`` (trailing slash ok).
        timeout: per-HTTP-call socket timeout in seconds.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Jitter source for poll backoff; injectable so tests get
        #: deterministic delay sequences.
        self.rng = rng if rng is not None else random.Random()

    # -- transport --------------------------------------------------------

    def _call(
        self, method: str, path: str, body: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            method=method,
            data=json.dumps(body).encode() if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read())
        except urllib.error.HTTPError as error:
            payload: dict[str, Any] = {}
            with contextlib.suppress(json.JSONDecodeError, OSError):
                payload = json.loads(error.read())
            if error.code in (429, 503):
                retry_after = payload.get(
                    "retry_after_s", error.headers.get("Retry-After", 1)
                )
                raise Backpressure(float(retry_after)) from None
            raise ClientError(
                error.code, str(payload.get("error", error.reason))
            ) from None

    # -- verbs ------------------------------------------------------------

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Submit a request body; returns ``{"job", "status", "outcome"}``."""
        return self._call("POST", "/v1/submit", request)

    def poll(self, key: str) -> dict[str, Any]:
        """Job status for a key."""
        return self._call("GET", f"/v1/jobs/{key}")

    def result(self, key: str) -> dict[str, Any]:
        """The completed result payload for a key.

        Raises:
            JobFailed: the server reports the job failed.
            ClientError: the key is unknown or still in flight.
        """
        try:
            return self._call("GET", f"/v1/result/{key}")
        except ClientError as error:
            if error.status == 500:
                raise JobFailed(str(error)) from None
            raise

    def healthz(self) -> dict[str, Any]:
        try:
            return self._call("GET", "/healthz")
        except Backpressure:  # draining still answers /healthz with 503
            return {"status": "draining"}

    def metrics(self) -> dict[str, Any]:
        return self._call("GET", "/metrics")

    # -- convenience ------------------------------------------------------

    def run(
        self,
        request: dict[str, Any],
        timeout: float = 120.0,
        poll_interval: Optional[float] = None,
    ) -> dict[str, Any]:
        """Submit and block until the result payload is available.

        Retries backpressured submits (honouring ``Retry-After``,
        fractional values included) and polls the job until done, all
        within ``timeout`` seconds.  Polling backs off exponentially
        with jitter — starting at ``poll_interval`` (default 20ms) and
        doubling to a 1s cap — instead of hammering a fixed 50ms loop;
        a long simulation costs the server O(log) status probes rather
        than thousands.  Every sleep is clamped to the remaining
        deadline, and :class:`TimeoutError` is raised *before* a sleep
        that could not be answered in time, so ``run`` never blocks
        past ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                ticket = self.submit(request)
                break
            except Backpressure as error:
                wait = min(error.retry_after_s, max(0, deadline - time.monotonic()))
                if time.monotonic() + wait >= deadline:
                    raise TimeoutError(
                        f"submit still backpressured after {timeout}s"
                    ) from None
                time.sleep(wait)
        key = ticket["job"]
        delay = POLL_INITIAL_S if poll_interval is None else poll_interval
        while True:
            status = self.poll(key)["status"]
            if status == "done":
                return self.result(key)
            if status == "failed":
                raise JobFailed(self.poll(key).get("error") or "job failed")
            if status == "unknown":
                raise ClientError(404, f"job {key} disappeared")
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(f"job {key} not done after {timeout}s")
            wait = min(
                delay * self.rng.uniform(POLL_JITTER_LOW, 1.0),
                deadline - now,
            )
            time.sleep(max(0.0, wait))
            delay = min(delay * POLL_GROWTH, POLL_MAX_S)
