"""``repro fastsim-calibrate``: fit / validate the fast tier.

Modes:

* default — run the harness on the chosen grid, refit per-class
  weights, print the error table (nothing written);
* ``--write`` — additionally write the payload to the committed
  ``calibration.json`` (or ``--output``);
* ``--check`` — validate the *committed* artifact instead of refitting:
  assert its fingerprint matches this tree (cheap, no simulation),
  assert its recorded errors meet the budget, then re-evaluate the
  committed weights on the chosen grid (``--quick`` for the reduced CI
  grid) and assert the live errors stay inside ``--max-median`` /
  ``--max-p95``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fastsim import calibration as cal

__all__ = ["calibrate_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fastsim-calibrate",
        description="Calibrate the fast simulation tier against the exact model",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced sparsity grid {cal.QUICK_LEVELS} instead of the full "
        "10%%-interval grid",
    )
    parser.add_argument(
        "--k-steps", type=int, default=24, help="reduction steps per point"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (REPRO_JOBS)"
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="write the fitted payload to the committed calibration.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the committed artifact (fingerprint, budget, live "
        "re-evaluation) instead of refitting",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write/read path override (default: the committed artifact)",
    )
    parser.add_argument(
        "--max-median",
        type=float,
        default=0.08,
        help="--check live-evaluation median budget (default 0.08)",
    )
    parser.add_argument(
        "--max-p95",
        type=float,
        default=0.20,
        help="--check live-evaluation p95 budget (default 0.20)",
    )
    return parser


def _executor(jobs):
    from repro.experiments.executor import SimExecutor

    return SimExecutor(jobs=jobs)


def _check(args: argparse.Namespace, levels: tuple[float, ...]) -> int:
    path = args.output or cal.CALIBRATION_PATH
    payload = cal.load_calibration(path)
    if payload is None:
        print(f"error: no readable calibration artifact at {path}", file=sys.stderr)
        return 1
    expected = cal.expected_fingerprint(
        tuple(payload["levels"]), payload["k_steps"], payload["seed"]
    )
    if payload.get("fingerprint") != expected:
        print(
            "error: committed calibration is STALE "
            f"(fingerprint {payload.get('fingerprint')} != expected {expected}); "
            "re-run `repro fastsim-calibrate --write`",
            file=sys.stderr,
        )
        return 1
    print(f"fingerprint ok: {expected}")
    problems = cal.validate_budget(payload)
    if problems:
        for problem in problems:
            print(f"error: recorded errors over budget: {problem}", file=sys.stderr)
        return 1
    summary = payload["summary"]
    print(
        f"recorded errors ok: median {summary['median_rel_err']:.3%}, "
        f"p95 {summary['p95_rel_err']:.3%} over {summary['points']} points"
    )
    print(
        f"re-evaluating committed weights on {len(levels)}x{len(levels)} grid "
        f"(k_steps={args.k_steps}) ..."
    )
    live = cal.run_calibration(
        levels=levels,
        k_steps=args.k_steps,
        seed=args.seed,
        executor=_executor(args.jobs),
        fit=False,
        weights=cal.committed_weights(payload),
        echo=print,
    )
    problems = cal.validate_budget(live, args.max_median, args.max_p95)
    if problems:
        for problem in problems:
            print(f"error: live evaluation over budget: {problem}", file=sys.stderr)
        return 1
    live_summary = live["summary"]
    print(
        f"live evaluation ok: median {live_summary['median_rel_err']:.3%}, "
        f"p95 {live_summary['p95_rel_err']:.3%}"
    )
    return 0


def calibrate_main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    levels = cal.QUICK_LEVELS if args.quick else cal.FULL_LEVELS
    if args.check:
        return _check(args, levels)
    if args.write and args.quick:
        print(
            "error: refusing to commit a quick-grid calibration; "
            "drop --quick for --write",
            file=sys.stderr,
        )
        return 2
    print(
        f"calibrating {len(cal.calibration_classes())} kernel classes on a "
        f"{len(levels)}x{len(levels)} sparsity grid (k_steps={args.k_steps}) ..."
    )
    payload = cal.run_calibration(
        levels=levels,
        k_steps=args.k_steps,
        seed=args.seed,
        executor=_executor(args.jobs),
        echo=print,
    )
    summary = payload["summary"]
    print(
        f"overall: median {summary['median_rel_err']:.3%}, "
        f"p95 {summary['p95_rel_err']:.3%}, max {summary['max_rel_err']:.3%} "
        f"over {summary['points']} points"
    )
    problems = cal.validate_budget(payload)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    if args.write:
        path = args.output or cal.CALIBRATION_PATH
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        return 1 if problems else 0
    return 1 if problems else 0
