"""Batched fast-path simulation tiers (the ROADMAP's 10–100× item).

Three engine tiers, selected by the ``engine=`` parameter threaded
through :func:`repro.core.pipeline.simulate`, :class:`PointJob`,
:class:`RunContext`, surfaces, sweeps, ``repro.serve`` and the CLI:

* ``"exact"`` — the cycle-level out-of-order pipeline in
  :mod:`repro.core` (bit-for-bit reference, unchanged);
* ``"fast"`` — structure-of-arrays bound-and-bottleneck estimation
  (:mod:`repro.fastsim.engine`), calibrated per kernel class against
  the exact model (:mod:`repro.fastsim.calibration`); error budget
  ≤ 5% median / ≤ 15% p95 relative cycle error on the full grid;
* ``"analytic"`` — the closed-form steady-state model
  (:mod:`repro.model.analytic`), cheapest and documented looser.

Every :class:`repro.core.pipeline.SimResult` carries an ``engine`` tag
so tiers never mix silently in surfaces or stores.
"""

from repro.fastsim.engine import (
    ENGINE_ANALYTIC,
    ENGINE_EXACT,
    ENGINE_FAST,
    ENGINES,
    FASTSIM_MODEL_VERSION,
    BoundBreakdown,
    bounds,
    class_key,
    simulate_arrays,
    simulate_config,
    simulate_stream,
    simulate_trace,
    validate_engine,
)
from repro.fastsim.soa import TraceArrays

__all__ = [
    "ENGINES",
    "ENGINE_ANALYTIC",
    "ENGINE_EXACT",
    "ENGINE_FAST",
    "FASTSIM_MODEL_VERSION",
    "BoundBreakdown",
    "TraceArrays",
    "bounds",
    "class_key",
    "simulate_arrays",
    "simulate_config",
    "simulate_stream",
    "simulate_trace",
    "validate_engine",
]
