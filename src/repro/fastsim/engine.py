"""Bound-and-bottleneck fast engine over :class:`TraceArrays`.

Instead of stepping a cycle loop, the fast tier computes four
whole-trace occupancy bounds directly from the structure-of-arrays
representation and predicts cycles from them:

* **front-end** — total allocated µops over the 5-wide alloc width;
* **VPU** — issue-slot demand after SAVE's coalescing.  For vertical
  and rotate-vertical schemes this uses a *rolling-window* occupancy:
  combination is limited to µops co-resident in the RS, so per-slot
  entry counts are maximised over windows of ``rs_entries //
  uops_per_step`` reduction steps, with rotation applied per logical
  accumulator register exactly as in the exact scheduler;
* **L1 bandwidth** — vector loads plus broadcast traffic through the
  configured B$ design over the L1 read ports;
* **dependence chain** — the longest serialized accumulator chain
  (lane-wise or vector-wise, matching the machine's dependence model)
  times the VFMA latency.

The raw estimate is ``max(bounds)``; the calibrated estimate is a
per-kernel-class linear blend of the bounds fitted against the exact
model (see :mod:`repro.fastsim.calibration`).  The analytic tier reuses
:func:`repro.model.analytic.predicted_time_per_fma_ns` — the paper's
closed-form steady-state model — and is documented looser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CoalescingScheme, MachineConfig
from repro.core.pipeline import SimResult
from repro.core.save.rotate import rotation_offset, slot_for_lane
from repro.fastsim.soa import TraceArrays
from repro.isa.datatypes import FP32_LANES
from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.stream import TraceStream
from repro.kernels.tiling import BroadcastPattern
from repro.kernels.trace import DEFAULT_CHUNK, KernelTrace
from repro.memory.broadcast_cache import BroadcastCacheKind

__all__ = [
    "ENGINES",
    "ENGINE_ANALYTIC",
    "ENGINE_EXACT",
    "ENGINE_FAST",
    "FASTSIM_MODEL_VERSION",
    "FEATURE_NAMES",
    "BoundBreakdown",
    "bounds",
    "class_key",
    "features",
    "simulate_arrays",
    "simulate_config",
    "simulate_stream",
    "simulate_trace",
    "validate_engine",
]

ENGINE_EXACT = "exact"
ENGINE_FAST = "fast"
ENGINE_ANALYTIC = "analytic"
ENGINES = (ENGINE_EXACT, ENGINE_FAST, ENGINE_ANALYTIC)

#: Bump when the bound model or feature vector changes shape/meaning —
#: invalidates committed calibration artifacts.
FASTSIM_MODEL_VERSION = 1

#: Calibration feature vector, in order.
FEATURE_NAMES = ("const", "frontend", "vpu", "l1", "chain", "bound_max")

#: Uncalibrated ramp-up allowance (alloc fill + first-load latency).
_STARTUP_CYCLES = 30.0


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def class_key(tile, precision, machine: MachineConfig) -> str:
    """Calibration class of a (kernel shape, machine) pair.

    Sparsity levels and ``k_steps`` deliberately stay *out* of the key:
    one set of per-class weights must interpolate across the whole
    sparsity grid and transfer across reduction depths.
    """
    from repro.model.surface import machine_label

    return (
        f"{tile.rows}x{tile.col_vectors}"
        f":{tile.pattern.value}:{precision.value}"
        f"|{machine_label(machine)}"
    )


@dataclass(frozen=True)
class BoundBreakdown:
    """The four whole-trace occupancy bounds, in cycles."""

    frontend: float
    vpu: float
    l1: float
    chain: float

    @property
    def bound_max(self) -> float:
        return max(self.frontend, self.vpu, self.l1, self.chain)

    @property
    def bottleneck(self) -> str:
        pairs = [
            ("frontend", self.frontend),
            ("vpu", self.vpu),
            ("l1", self.l1),
            ("chain", self.chain),
        ]
        return max(pairs, key=lambda pair: pair[1])[0]


def _frontend_bound(arrays: TraceArrays, machine: MachineConfig) -> float:
    return arrays.uop_count / machine.core.issue_width


def _slot_indices(arrays: TraceArrays, machine: MachineConfig) -> np.ndarray:
    """Temp-slot index per (row, col_vector, lane) under rotation."""
    rows, cv = arrays.tile.rows, arrays.tile.col_vectors
    offsets = np.zeros((rows, cv), dtype=np.int64)
    if machine.save.coalescing == CoalescingScheme.ROTATE_VERTICAL:
        for r in range(rows):
            for j in range(cv):
                # Accumulator registers are allocated row-major by the
                # trace builder, so (r, j) accumulates into register
                # r * col_vectors + j.
                offsets[r, j] = rotation_offset(
                    r * cv + j, machine.save.rotation_states
                )
    lanes = np.arange(FP32_LANES, dtype=np.int64)
    slots = (lanes[None, None, :] + offsets[:, :, None]) % FP32_LANES
    assert slot_for_lane(0, int(offsets[0, 0])) == int(slots[0, 0, 0])
    return slots


def _vpu_bound(arrays: TraceArrays, machine: MachineConfig) -> float:
    core, save = machine.core, machine.save
    if not save.enabled:
        return arrays.fma_count / core.num_vpus
    if save.coalescing == CoalescingScheme.NAIVE:
        # No cross-instruction combining: every non-BS-skipped VFMA is
        # a whole VPU op.
        return (arrays.fma_count - arrays.skipped_fmas) / core.num_vpus
    mp_chains = arrays.mixed and save.mixed_precision_technique
    if save.coalescing == CoalescingScheme.HORIZONTAL:
        # Perfect compression across all 16 slots.
        if mp_chains:
            totals = arrays.ml_count.sum(axis=0, dtype=np.int64)
            entries = float(np.ceil(totals / 2.0).sum())
        else:
            entries = float(np.count_nonzero(arrays.effectual))
        return entries / (FP32_LANES * core.num_vpus)
    # Vertical / rotate-vertical: per temp-slot demand, maximised over
    # RS-co-residency windows.  Entries in different windows can never
    # combine, so their slot demands add.
    window = max(1, min(arrays.k_steps, core.rs_entries // arrays.uops_per_step))
    slot_idx = _slot_indices(arrays, machine).ravel()
    cycles = 0.0
    for start in range(0, arrays.k_steps, window):
        block = slice(start, start + window)
        if mp_chains:
            # ML chains drain two reduction levels per slot entry.
            totals = arrays.ml_count[block].sum(axis=0, dtype=np.int64)
            counts = np.ceil(totals / 2.0)
        else:
            counts = arrays.effectual[block].sum(axis=0, dtype=np.int64)
        per_slot = np.bincount(
            slot_idx, weights=counts.ravel().astype(np.float64),
            minlength=FP32_LANES,
        )
        # A VPU op consumes at most one entry per slot per cycle, and at
        # most 16 entries total — whichever is tighter.
        cycles += max(float(per_slot.max()), float(counts.sum()) / FP32_LANES)
    return cycles / core.num_vpus


def _l1_bound(arrays: TraceArrays, machine: MachineConfig) -> float:
    save = machine.save
    loads = arrays.k_steps * arrays.loads_per_step
    reads_per_broadcast = (
        1
        if arrays.tile.pattern == BroadcastPattern.EXPLICIT
        else arrays.tile.col_vectors
    )
    total_broadcasts = arrays.k_steps * arrays.tile.rows * reads_per_broadcast
    kind = save.broadcast_cache if save.enabled else BroadcastCacheKind.NONE
    elements_per_line = 64 // arrays.element_bytes
    lines_per_row = -(-arrays.k_depth // elements_per_line)
    if kind == BroadcastCacheKind.DATA:
        # Each broadcast row is read from L1 once per resident line;
        # every further broadcast hits the B$.
        broadcast_l1 = arrays.tile.rows * lines_per_row
    elif kind == BroadcastCacheKind.MASK:
        # Mask hits only elide *zero* broadcasts; non-zero ones still
        # read the L1.
        nonzero = int(np.count_nonzero(arrays.broadcast_nonzero))
        broadcast_l1 = arrays.tile.rows * lines_per_row + nonzero * reads_per_broadcast
    else:
        broadcast_l1 = total_broadcasts
    return (loads + broadcast_l1) / machine.hierarchy.l1_read_ports


def _chain_bound(arrays: TraceArrays, machine: MachineConfig) -> float:
    save = machine.save
    latency = machine.fma_latency(arrays.mixed)
    if not save.enabled:
        return float(arrays.k_steps * latency)
    if arrays.mixed and save.mixed_precision_technique:
        totals = arrays.ml_count.sum(axis=0, dtype=np.int64)
        depth = float(np.ceil(totals / 2.0).max()) if totals.size else 0.0
        return depth * latency
    if save.coalescing == CoalescingScheme.NAIVE or not save.lane_wise_dependence:
        # Vector-wise dependence: every non-skipped step serializes the
        # whole accumulator.
        depth = int(arrays.effectual.any(axis=3).sum(axis=0).max())
    else:
        # Lane-wise dependence: only effectual steps of the *same lane*
        # serialize.
        depth = int(arrays.effectual.sum(axis=0, dtype=np.int64).max())
    return float(depth) * latency


def bounds(arrays: TraceArrays, machine: MachineConfig) -> BoundBreakdown:
    """Compute all four occupancy bounds for one trace/machine pair."""
    return BoundBreakdown(
        frontend=_frontend_bound(arrays, machine),
        vpu=_vpu_bound(arrays, machine),
        l1=_l1_bound(arrays, machine),
        chain=_chain_bound(arrays, machine),
    )


def features(breakdown: BoundBreakdown) -> np.ndarray:
    """Calibration feature vector (order matches ``FEATURE_NAMES``)."""
    return np.array(
        [
            1.0,
            breakdown.frontend,
            breakdown.vpu,
            breakdown.l1,
            breakdown.chain,
            breakdown.bound_max,
        ],
        dtype=np.float64,
    )


def predict_cycles(
    breakdown: BoundBreakdown, weights: np.ndarray | None
) -> float:
    """Cycles from bounds: calibrated blend, or raw max when unfitted."""
    if weights is None:
        return breakdown.bound_max + _STARTUP_CYCLES
    return max(1.0, float(features(breakdown) @ np.asarray(weights)))


# ---------------------------------------------------------------------------
# SimResult assembly
# ---------------------------------------------------------------------------


def _static_counters(
    arrays: TraceArrays, machine: MachineConfig
) -> tuple[int, int, int]:
    """(effectual_lanes, pass_through_lanes, skipped_fmas), matching the
    exact pipeline's counter semantics for this machine."""
    if not machine.save.enabled:
        return 0, 0, 0
    if arrays.mixed and machine.save.mixed_precision_technique:
        effectual = arrays.effectual_lanes  # ML count per chain append
    else:
        effectual = int(np.count_nonzero(arrays.effectual))
    return effectual, arrays.pass_through_lanes, arrays.skipped_fmas


def _assemble(
    arrays: TraceArrays,
    machine: MachineConfig,
    cycles: float,
    breakdown: BoundBreakdown,
    engine: str,
) -> SimResult:
    core = machine.core
    effectual, pass_through, skipped = _static_counters(arrays, machine)
    vpu_cycles = breakdown.vpu * core.num_vpus
    if machine.save.enabled:
        lane_slots = effectual
        mgu_processed = arrays.fma_count
    else:
        lane_slots = arrays.fma_count * FP32_LANES
        mgu_processed = 0
    return SimResult(
        name=arrays.name,
        cycles=max(1, int(round(cycles))),
        freq_ghz=core.freq_ghz,
        uop_count=arrays.uop_count,
        fma_count=arrays.fma_count,
        vpu_ops=int(round(vpu_cycles)),
        vpu_lane_slots=lane_slots,
        effectual_lanes=effectual,
        pass_through_lanes=pass_through,
        skipped_fmas=skipped,
        stall_rob_cycles=0,
        stall_rs_cycles=0,
        mgu_processed=mgu_processed,
        l1_port_accesses=int(round(breakdown.l1 * machine.hierarchy.l1_read_ports)),
        b_cache_hit_rate=0.0,
        b_cache_reads_saved=0,
        engine=engine,
    )


def simulate_arrays(
    arrays: TraceArrays,
    machine: MachineConfig,
    engine: str = ENGINE_FAST,
    *,
    config: GemmKernelConfig | None = None,
) -> SimResult:
    """Estimate one point from its structure-of-arrays form."""
    validate_engine(engine)
    if engine == ENGINE_EXACT:
        raise ValueError("the exact engine needs a µop trace; use repro.core")
    breakdown = bounds(arrays, machine)
    if engine == ENGINE_ANALYTIC:
        from repro.model.analytic import predicted_time_per_fma_ns

        ns_per_fma = predicted_time_per_fma_ns(
            arrays.tile,
            machine,
            arrays.precision,
            config.broadcast_sparsity if config is not None else _a_sparsity(arrays),
            config.nonbroadcast_sparsity if config is not None else _b_sparsity(arrays),
        )
        cycles = ns_per_fma * arrays.fma_count * machine.core.freq_ghz
    else:
        from repro.fastsim.calibration import weights_for

        key = class_key(arrays.tile, arrays.precision, machine)
        cycles = predict_cycles(breakdown, weights_for(key))
    return _assemble(arrays, machine, cycles, breakdown, engine)


def _a_sparsity(arrays: TraceArrays) -> float:
    return 1.0 - np.count_nonzero(arrays.a_nz) / arrays.a_nz.size


def _b_sparsity(arrays: TraceArrays) -> float:
    return 1.0 - np.count_nonzero(arrays.b_nz) / arrays.b_nz.size


def simulate_config(
    config: GemmKernelConfig,
    machine: MachineConfig,
    engine: str = ENGINE_FAST,
) -> SimResult:
    """Estimate one seeded kernel config without building a µop trace."""
    return simulate_arrays(
        TraceArrays.from_config(config), machine, engine, config=config
    )


def simulate_trace(
    trace: KernelTrace,
    machine: MachineConfig,
    engine: str = ENGINE_FAST,
) -> SimResult:
    """Estimate one already-generated trace (same arrays as the config).

    Accepts any :class:`repro.kernels.stream.TraceStream` as well — the
    arrays come from the generator metadata, which both traces and
    streams carry up front.
    """
    return simulate_arrays(TraceArrays.from_trace(trace), machine, engine)


def simulate_stream(
    stream: TraceStream,
    machine: MachineConfig,
    engine: str = ENGINE_FAST,
    chunk: int = DEFAULT_CHUNK,
) -> SimResult:
    """Estimate a chunked trace stream by decoding its µops incrementally.

    Unlike :func:`simulate_trace` (which shortcuts through the
    generator metadata), this path builds the structure-of-arrays by
    walking the µop stream chunk-by-chunk
    (:meth:`TraceArrays.from_stream`) — the route for producers whose
    matrices are not carried in metadata.
    """
    return simulate_arrays(TraceArrays.from_stream(stream, chunk), machine, engine)
