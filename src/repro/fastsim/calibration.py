"""Calibration of the fast tier against the exact pipeline.

Accuracy is a managed contract: the harness runs the exact engine over
the paper's full 10%-interval sparsity grid for every kernel class in
the library × every machine preset, fits per-class linear weights over
the fast tier's bound features (minimising *relative* cycle error), and
records the residual error distribution into a committed
``calibration.json`` next to this module.  Tests enforce the budget the
ISSUE sets — fast tier ≤ 5% median / ≤ 15% p95 relative cycle error on
that grid — and CI re-validates the committed weights on a reduced
grid, so the artifact can never silently go stale.

The artifact carries a content *fingerprint* over everything the fit
depends on (trace-generator version, fastsim model version, feature
vector, grid, kernel classes).  Recomputing the fingerprint needs no
simulation, so staleness checks are cheap.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, MachineConfig
from repro.fastsim import engine as fast_engine
from repro.fastsim.soa import TraceArrays
from repro.kernels.library import KERNEL_LIBRARY, KernelSpec

__all__ = [
    "CALIBRATION_PATH",
    "CALIBRATION_SCHEMA_VERSION",
    "MACHINE_PRESETS",
    "calibration_classes",
    "expected_fingerprint",
    "load_calibration",
    "run_calibration",
    "validate_budget",
    "weights_for",
]

CALIBRATION_SCHEMA_VERSION = 1

#: The committed artifact, shipped with the package.
CALIBRATION_PATH = Path(__file__).parent / "calibration.json"

#: Machine presets the calibration grid covers.
MACHINE_PRESETS: tuple[tuple[str, MachineConfig], ...] = (
    ("baseline", BASELINE_2VPU),
    ("save", SAVE_2VPU),
    ("save_1vpu", SAVE_1VPU),
)

#: The paper's grid: 0%–90% sparsity at 10% intervals, both axes.
FULL_LEVELS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(10))

#: Reduced grid for CI smoke validation.
QUICK_LEVELS: tuple[float, ...] = (0.0, 0.4, 0.8)

#: Error budget on the full calibration grid (ISSUE acceptance).
BUDGET_MEDIAN = 0.05
BUDGET_P95 = 0.15

_DEFAULT_K_STEPS = 24
_DEFAULT_SEED = 0


def calibration_classes() -> dict[str, tuple[KernelSpec, MachineConfig]]:
    """Unique (tile shape, precision, machine) classes, keyed like
    :func:`repro.fastsim.engine.class_key`.

    Library kernels sharing a shape/pattern/precision collapse into one
    class — the fast model sees identical structure for them.
    """
    classes: dict[str, tuple[KernelSpec, MachineConfig]] = {}
    for spec in KERNEL_LIBRARY.values():
        for _, machine in MACHINE_PRESETS:
            key = fast_engine.class_key(
                spec.tile, spec.default_precision, machine
            )
            classes.setdefault(key, (spec, machine))
    return classes


def expected_fingerprint(
    levels: tuple[float, ...] = FULL_LEVELS,
    k_steps: int = _DEFAULT_K_STEPS,
    seed: int = _DEFAULT_SEED,
) -> str:
    """Content hash of everything the committed fit depends on."""
    from repro.model.surface import TRACE_GENERATOR_VERSION

    basis = {
        "schema": CALIBRATION_SCHEMA_VERSION,
        "trace_generator": TRACE_GENERATOR_VERSION,
        "fastsim_model": fast_engine.FASTSIM_MODEL_VERSION,
        "features": list(fast_engine.FEATURE_NAMES),
        "levels": [float(level) for level in levels],
        "k_steps": k_steps,
        "seed": seed,
        "classes": sorted(calibration_classes()),
    }
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def _exact_cycles(
    spec: KernelSpec,
    machine: MachineConfig,
    levels: tuple[float, ...],
    k_steps: int,
    seed: int,
    executor,
) -> tuple[list, np.ndarray]:
    """Run the exact engine over the sparsity grid for one class."""
    from repro.experiments.executor import METRIC_TIME_NS, PointJob

    configs = [
        spec.config(
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            k_steps=k_steps,
            seed=seed,
        )
        for bs in levels
        for nbs in levels
    ]
    jobs = [
        PointJob(config, machine, metric=METRIC_TIME_NS) for config in configs
    ]
    times_ns = executor.map(jobs)
    cycles = np.array(times_ns, dtype=np.float64) * machine.core.freq_ghz
    return configs, cycles


def _fit_weights(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least squares minimising *relative* error: scale each row by 1/y
    and regress onto 1."""
    scaled = x / y[:, None]
    target = np.ones_like(y)
    weights, *_ = np.linalg.lstsq(scaled, target, rcond=None)
    return weights


def _error_stats(rel: np.ndarray) -> dict[str, float]:
    return {
        "median_rel_err": float(np.median(rel)),
        "p95_rel_err": float(np.percentile(rel, 95)),
        "max_rel_err": float(rel.max()),
    }


def run_calibration(
    levels: tuple[float, ...] = FULL_LEVELS,
    k_steps: int = _DEFAULT_K_STEPS,
    seed: int = _DEFAULT_SEED,
    executor=None,
    fit: bool = True,
    weights: Optional[dict[str, np.ndarray]] = None,
    echo=None,
) -> dict:
    """Cross-validate (and optionally refit) fast vs exact per class.

    With ``fit=True`` (the default) per-class weights are fitted on the
    grid and the payload is a fresh calibration artifact.  With
    ``fit=False`` the provided ``weights`` (e.g. the committed ones)
    are *evaluated* on the grid instead — that is the staleness smoke
    check.
    """
    if executor is None:
        from repro.experiments.executor import SERIAL_EXECUTOR

        executor = SERIAL_EXECUTOR
    classes: dict[str, dict] = {}
    pooled: list[np.ndarray] = []
    for key, (spec, machine) in sorted(calibration_classes().items()):
        configs, exact = _exact_cycles(
            spec, machine, levels, k_steps, seed, executor
        )
        x = np.stack(
            [
                fast_engine.features(
                    fast_engine.bounds(TraceArrays.from_config(config), machine)
                )
                for config in configs
            ]
        )
        if fit:
            w = _fit_weights(x, exact)
        else:
            if weights is None or key not in weights:
                raise ValueError(f"no committed weights for class {key!r}")
            w = np.asarray(weights[key], dtype=np.float64)
        predicted = np.maximum(x @ w, 1.0)
        rel = np.abs(predicted - exact) / exact
        pooled.append(rel)
        classes[key] = {
            "kernel": spec.name,
            "points": int(rel.size),
            "weights": [float(value) for value in w],
            **_error_stats(rel),
        }
        if echo is not None:
            echo(
                f"  {key}: median {classes[key]['median_rel_err']:.3%} "
                f"p95 {classes[key]['p95_rel_err']:.3%} "
                f"max {classes[key]['max_rel_err']:.3%}"
            )
    all_rel = np.concatenate(pooled)
    return {
        "schema": CALIBRATION_SCHEMA_VERSION,
        "fingerprint": expected_fingerprint(levels, k_steps, seed),
        "engine": fast_engine.ENGINE_FAST,
        "feature_names": list(fast_engine.FEATURE_NAMES),
        "levels": [float(level) for level in levels],
        "k_steps": k_steps,
        "seed": seed,
        "budget": {"median": BUDGET_MEDIAN, "p95": BUDGET_P95},
        "classes": classes,
        "summary": {
            "classes": len(classes),
            "points": int(all_rel.size),
            **_error_stats(all_rel),
        },
    }


def validate_budget(
    payload: dict,
    max_median: float = BUDGET_MEDIAN,
    max_p95: float = BUDGET_P95,
) -> list[str]:
    """Budget violations in a calibration payload (empty == pass)."""
    problems = []
    summary = payload.get("summary", {})
    median = summary.get("median_rel_err")
    p95 = summary.get("p95_rel_err")
    if median is None or p95 is None:
        return ["payload has no summary error statistics"]
    if median > max_median:
        problems.append(
            f"median relative error {median:.3%} exceeds budget "
            f"{max_median:.0%}"
        )
    if p95 > max_p95:
        problems.append(
            f"p95 relative error {p95:.3%} exceeds budget {max_p95:.0%}"
        )
    return problems


# ---------------------------------------------------------------------------
# Committed-artifact access
# ---------------------------------------------------------------------------

_CACHE: dict[str, Optional[dict]] = {}


def load_calibration(path: Path = CALIBRATION_PATH) -> Optional[dict]:
    """The committed calibration payload, or ``None`` if absent/invalid.

    Cached per path: the fast tier consults this on every simulated
    point.
    """
    cache_key = str(path)
    if cache_key not in _CACHE:
        payload: Optional[dict] = None
        try:
            loaded = json.loads(path.read_text())
            if loaded.get("schema") == CALIBRATION_SCHEMA_VERSION:
                payload = loaded
        except (OSError, ValueError):
            payload = None
        _CACHE[cache_key] = payload
    return _CACHE[cache_key]


def weights_for(key: str) -> Optional[np.ndarray]:
    """Committed weights for one kernel class (``None`` → raw bounds)."""
    payload = load_calibration()
    if payload is None:
        return None
    entry = payload["classes"].get(key)
    if entry is None:
        return None
    return np.asarray(entry["weights"], dtype=np.float64)


def committed_weights(payload: dict) -> dict[str, np.ndarray]:
    """Extract the per-class weight vectors from a payload."""
    return {
        key: np.asarray(entry["weights"], dtype=np.float64)
        for key, entry in payload["classes"].items()
    }
