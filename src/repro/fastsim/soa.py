"""Structure-of-arrays view of a GEMM inner-loop kernel.

The exact pipeline walks a list of µop *objects*; everything the fast
engine needs from that stream is a handful of dense numpy tensors:

* the non-zero masks of the two input matrices (``a_nz``, ``b_nz``),
* the per-(step, row, column-vector, lane) **effectual tensor** — the
  vectorised Effectual Lane Mask of every VFMA in the trace, computed
  with exactly the semantics of :func:`repro.core.save.elm.compute_elm`
  (a lane is effectual iff both multiplicand elements are non-zero;
  mixed precision is per accumulator lane over its two multiplicand
  pairs),
* per-µop-class counts (loads, broadcasts, kmovs, FMAs, scalar
  overhead) for front-end accounting.

:meth:`TraceArrays.from_config` rebuilds the matrices by replaying the
trace builder's seeded RNG calls, so the arrays match a generated trace
bit-for-bit *without* materialising a single µop object — that is where
the fast tier's per-point speedup comes from.
:meth:`TraceArrays.from_trace` reads the same matrices out of an
already-built :class:`repro.kernels.trace.KernelTrace`, and
:meth:`TraceArrays.from_stream` appends chunk-by-chunk from any
:class:`repro.kernels.stream.TraceStream` — decoding the µops against
the stream's memory image — so the structure-of-arrays can be built
without a materialized µop list in memory.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.isa.datatypes import BF16_LANES, FP32_LANES, bf16_round
from repro.isa.uops import UopKind
from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.stream import TraceStream
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import DEFAULT_CHUNK, KernelTrace
from repro.sparsity.generators import sparse_matrix

__all__ = ["TraceArrays"]

#: FMA provenance tag written by the GEMM generators:
#: ``k{step}r{row}c{col_vector}``.
_FMA_TAG = re.compile(r"k(\d+)r(\d+)c(\d+)")


@dataclass(frozen=True)
class TraceArrays:
    """Dense-array equivalent of one generated kernel trace.

    ``effectual`` has shape ``(k_steps, rows, col_vectors, 16)`` and is
    True where the VFMA of reduction step ``k`` on accumulator
    ``(row, j)`` does real work in accumulator lane ``l``.
    ``ml_count`` is the per-lane effectual multiplicand-lane count —
    identical to ``effectual`` for FP32, and in ``{0, 1, 2}`` for mixed
    precision (two reduction levels per accumulator lane).
    """

    name: str
    tile: RegisterTile
    k_steps: int
    precision: Precision
    use_write_masks: bool
    scalar_overhead_per_step: int
    a_nz: np.ndarray  # bool (rows, k_depth)
    b_nz: np.ndarray  # bool (k_depth, col_vectors * 16)
    effectual: np.ndarray  # bool (k_steps, rows, col_vectors, 16)
    ml_count: np.ndarray  # int8, same shape as ``effectual``
    broadcast_nonzero: np.ndarray  # bool (k_steps, rows)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_config(cls, config: GemmKernelConfig) -> TraceArrays:
        """Build the arrays straight from a seeded trace config.

        Replays the exact RNG call sequence of
        :class:`repro.kernels.gemm._GemmTraceBuilder` (one generator,
        A first, then B), so the non-zero structure is identical to the
        trace the exact engine would simulate.
        """
        tile = config.tile
        rows, cv = tile.rows, tile.col_vectors
        k_depth = config.k_depth
        rng = np.random.default_rng(config.seed)
        a = sparse_matrix((rows, k_depth), config.broadcast_sparsity, rng)
        b = sparse_matrix(
            (k_depth, cv * FP32_LANES), config.nonbroadcast_sparsity, rng
        )
        if config.precision == Precision.MIXED:
            a = bf16_round(a)
            b = bf16_round(b)
        return cls._from_matrices(config, a, b)

    @classmethod
    def from_trace(cls, trace: KernelTrace) -> TraceArrays:
        """Build the arrays from an already-generated trace's metadata."""
        meta = trace.meta
        config = GemmKernelConfig(
            name=trace.name,
            tile=meta["tile"],
            k_steps=meta["k_steps"],
            precision=meta["precision"],
            broadcast_sparsity=meta["broadcast_sparsity"],
            nonbroadcast_sparsity=meta["nonbroadcast_sparsity"],
            use_write_masks=meta.get("use_write_masks", False),
            scalar_overhead_per_step=meta.get("scalar_overhead_per_step", 2),
        )
        return cls._from_matrices(
            config, np.asarray(meta["a_matrix"]), np.asarray(meta["b_matrix"])
        )

    @classmethod
    def from_stream(
        cls, stream: TraceStream, chunk: int = DEFAULT_CHUNK
    ) -> TraceArrays:
        """Append into the structure-of-arrays chunk-by-chunk.

        Decodes the µop stream itself (not the generator's metadata
        matrices): VLOAD/VBCAST µops establish the register→address map,
        and each VFMA's ``k{step}r{row}c{j}`` tag plus its operand
        addresses — resolved against the stream's memory image — yield
        one ``(step, row, col_vector)`` slice of the effectual tensor.
        Only one chunk of µops is resident at a time, so arbitrarily
        long traces build in O(arrays) memory.
        """
        meta = stream.meta
        tile: RegisterTile = meta["tile"]
        k = int(meta["k_steps"])
        precision: Precision = meta["precision"]
        mixed = precision == Precision.MIXED
        rows, cv = tile.rows, tile.col_vectors
        k_depth = k * (2 if mixed else 1)
        elem_bytes = 2 if mixed else 4
        lanes = BF16_LANES if mixed else FP32_LANES

        a_nz = np.zeros((rows, k_depth), dtype=bool)
        b_nz = np.zeros((k_depth, cv * FP32_LANES), dtype=bool)
        effectual = np.zeros((k, rows, cv, FP32_LANES), dtype=bool)
        ml_count = np.zeros((k, rows, cv, FP32_LANES), dtype=np.int8)
        broadcast_nonzero = np.zeros((k, rows), dtype=bool)

        memory = stream.memory
        reg_addr: dict[int, int] = {}
        for block in stream.iter_uops(chunk):
            for uop in block:
                kind = uop.kind
                if kind in (UopKind.VLOAD, UopKind.VBCAST):
                    reg_addr[uop.dst] = uop.src_a.addr
                    continue
                if not uop.is_fma():
                    continue
                tag = _FMA_TAG.fullmatch(uop.tag or "")
                if tag is None:
                    raise ValueError(
                        f"FMA µop without a k/r/c provenance tag: {uop.tag!r}"
                    )
                k_i, r_i, j_i = (int(g) for g in tag.groups())
                mem_op = uop.memory_operand()
                a_addr = mem_op.addr if mem_op is not None else reg_addr[uop.src_a.reg]
                b_vec = memory.read_vector(reg_addr[uop.src_b.reg], lanes, elem_bytes)
                cols = slice(j_i * FP32_LANES, (j_i + 1) * FP32_LANES)
                if mixed:
                    a_pair = np.array(
                        [memory.read(a_addr), memory.read(a_addr + elem_bytes)]
                    )
                    a_live = a_pair != 0
                    even_nz = b_vec[0::2] != 0
                    odd_nz = b_vec[1::2] != 0
                    a_nz[r_i, 2 * k_i] = a_live[0]
                    a_nz[r_i, 2 * k_i + 1] = a_live[1]
                    b_nz[2 * k_i, cols] = even_nz
                    b_nz[2 * k_i + 1, cols] = odd_nz
                    ml = (a_live[0] & even_nz).astype(np.int8)
                    ml += (a_live[1] & odd_nz).astype(np.int8)
                    ml_count[k_i, r_i, j_i] = ml
                    effectual[k_i, r_i, j_i] = ml > 0
                    broadcast_nonzero[k_i, r_i] = bool(a_live.any())
                else:
                    a_live = memory.read(a_addr) != 0
                    vec_nz = b_vec != 0
                    a_nz[r_i, k_i] = a_live
                    b_nz[k_i, cols] = vec_nz
                    eff = a_live & vec_nz
                    effectual[k_i, r_i, j_i] = eff
                    ml_count[k_i, r_i, j_i] = eff.astype(np.int8)
                    broadcast_nonzero[k_i, r_i] = a_live
        return cls(
            name=stream.name,
            tile=tile,
            k_steps=k,
            precision=precision,
            use_write_masks=bool(meta.get("use_write_masks", False)),
            scalar_overhead_per_step=int(meta.get("scalar_overhead_per_step", 2)),
            a_nz=a_nz,
            b_nz=b_nz,
            effectual=effectual,
            ml_count=ml_count,
            broadcast_nonzero=broadcast_nonzero,
        )

    @classmethod
    def _from_matrices(
        cls, config: GemmKernelConfig, a: np.ndarray, b: np.ndarray
    ) -> TraceArrays:
        tile = config.tile
        rows, cv = tile.rows, tile.col_vectors
        k = config.k_steps
        # Exact-zero operand test — same sparsity-detection semantics as
        # the hardware model (generators guarantee zeros are exact).
        a_nz = a != 0
        b_nz = b != 0
        if config.precision == Precision.MIXED:
            # ELM semantics per accumulator lane over pairs p in (0, 1):
            # pair p effectual iff A[r, 2k+p] != 0 and B[2k+p, j*16+l] != 0.
            a_pair = a_nz.T.reshape(k, 2, rows)  # [k, p, r]
            b_pair = b_nz.reshape(k, 2, cv, FP32_LANES)  # [k, p, j, l]
            ml = (
                a_pair[:, :, :, None, None] & b_pair[:, :, None, :, :]
            )  # [k, p, r, j, l]
            ml_count = ml.sum(axis=1, dtype=np.int8)
            effectual = ml.any(axis=1)
            broadcast_nonzero = a_pair.any(axis=1)  # [k, r]
        else:
            a_steps = a_nz.T  # [k, r]
            b_steps = b_nz.reshape(k, cv, FP32_LANES)  # [k, j, l]
            effectual = a_steps[:, :, None, None] & b_steps[:, None, :, :]
            ml_count = effectual.astype(np.int8)
            broadcast_nonzero = a_steps
        return cls(
            name=config.name,
            tile=tile,
            k_steps=k,
            precision=config.precision,
            use_write_masks=config.use_write_masks,
            scalar_overhead_per_step=config.scalar_overhead_per_step,
            a_nz=a_nz,
            b_nz=b_nz,
            effectual=effectual,
            ml_count=ml_count,
            broadcast_nonzero=broadcast_nonzero,
        )

    # -- derived structure -------------------------------------------------

    @property
    def mixed(self) -> bool:
        return self.precision == Precision.MIXED

    @property
    def element_bytes(self) -> int:
        return 2 if self.mixed else 4

    @property
    def k_depth(self) -> int:
        return self.k_steps * (2 if self.mixed else 1)

    @property
    def accumulators(self) -> int:
        return self.tile.accumulators

    @property
    def fma_count(self) -> int:
        """VFMAs in the trace (one per step per accumulator)."""
        return self.k_steps * self.accumulators

    @property
    def loads_per_step(self) -> int:
        return self.tile.col_vectors

    @property
    def broadcasts_per_step(self) -> int:
        """Broadcast *reads* per step (µops for explicit, operands for
        embedded — every embedded VFMA carries one)."""
        if self.tile.pattern == BroadcastPattern.EXPLICIT:
            return self.tile.rows
        return self.tile.rows * self.tile.col_vectors

    @property
    def uops_per_step(self) -> int:
        """Allocated µops per reduction step."""
        count = (
            self.scalar_overhead_per_step
            + self.loads_per_step
            + self.accumulators
        )
        if self.tile.pattern == BroadcastPattern.EXPLICIT:
            count += self.tile.rows  # VBCAST µops
        if self.use_write_masks:
            count += self.tile.col_vectors  # KMOVs
        return count

    @property
    def uop_count(self) -> int:
        """Total µops: VZEROs + K steps + accumulator VSTOREs."""
        return 2 * self.accumulators + self.k_steps * self.uops_per_step

    @property
    def skipped_fmas(self) -> int:
        """VFMAs whose whole ELM is zero (BS-skippable)."""
        return int(self.fma_count - np.count_nonzero(self.effectual.any(axis=3)))

    @property
    def effectual_lanes(self) -> int:
        """Total effectual multiplicand work items across the trace."""
        return int(self.ml_count.sum(dtype=np.int64))

    @property
    def pass_through_lanes(self) -> int:
        """Accumulator lanes that pass through with no VPU work."""
        return int(self.fma_count * FP32_LANES) - int(
            np.count_nonzero(self.effectual)
        )
