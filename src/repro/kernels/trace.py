"""The :class:`KernelTrace` container produced by the generators.

A trace bundles the µop stream with the functional memory image it runs
against, the address regions of the matrices, and summary statistics.
Both the reference executor and the pipeline consume the same object.

Since the streaming redesign, consumers should treat a trace as a
*chunked µop stream* (:meth:`KernelTrace.iter_uops`) rather than a
materialized list: the pipeline, the reference executor and the fast
engine all pull chunks incrementally, so out-of-core sweeps never hold
more than one chunk of µops per in-flight point.  Direct ``.uops``
attribute access is deprecated — call :meth:`KernelTrace.materialize`
when a plain list is genuinely needed (see ``docs/api.md`` for the
migration table).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional
from collections.abc import Iterable, Iterator

import numpy as np

from repro.isa.registers import ArchState, Memory
from repro.isa.uops import Uop, UopKind
from repro.memory.address import Region

#: Default µop-chunk size for :meth:`KernelTrace.iter_uops` and the
#: generator-backed streams.  Large enough to amortise per-chunk
#: bookkeeping, small enough that an in-flight point holds ~one ROB's
#: worth of µops rather than the whole trace.
DEFAULT_CHUNK = 1024


@dataclass
class TraceStats:
    """µop-count breakdown of a trace.

    For a streaming trace the stats object is updated *incrementally*
    as chunks are yielded — after a full pass it equals
    :func:`count_uops` over the materialized list.
    """

    fmas: int = 0
    vector_loads: int = 0
    broadcasts: int = 0
    embedded_broadcasts: int = 0
    stores: int = 0
    scalars: int = 0
    kmovs: int = 0
    vzeros: int = 0

    @property
    def total(self) -> int:
        return (
            self.fmas
            + self.vector_loads
            + self.broadcasts
            + self.stores
            + self.scalars
            + self.kmovs
            + self.vzeros
        )

    def add(self, uop: Uop) -> None:
        """Tally one µop into this breakdown."""
        if uop.is_fma():
            self.fmas += 1
            mem = uop.memory_operand()
            if mem is not None and mem.broadcast:
                self.embedded_broadcasts += 1
        elif uop.kind == UopKind.VLOAD:
            self.vector_loads += 1
        elif uop.kind == UopKind.VBCAST:
            self.broadcasts += 1
        elif uop.kind == UopKind.VSTORE:
            self.stores += 1
        elif uop.kind == UopKind.SCALAR:
            self.scalars += 1
        elif uop.kind == UopKind.KMOV:
            self.kmovs += 1
        elif uop.kind == UopKind.VZERO:
            self.vzeros += 1


def count_uops(trace: Iterable[Uop]) -> TraceStats:
    """Tally any µop iterable into a :class:`TraceStats`."""
    stats = TraceStats()
    for uop in trace:
        stats.add(uop)
    return stats


class KernelTrace:
    """A generated kernel: µops + data + layout + metadata.

    Attributes:
        name: kernel label.
        memory: functional memory image holding A, B (and C space).
        regions: matrix name → address region.
        stats: µop counts.
        meta: generator-specific metadata (tile geometry, sparsity
            levels, reduction depth, ...).

    The µop list itself is reached through :meth:`iter_uops` (chunked,
    the streaming contract) or :meth:`materialize` (the full list);
    attribute access via ``.uops`` still works but is deprecated.
    """

    def __init__(
        self,
        name: str,
        uops: list[Uop],
        memory: Memory,
        regions: dict[str, Region],
        stats: TraceStats,
        meta: Optional[dict[str, object]] = None,
    ) -> None:
        self.name = name
        self._uops = uops
        self.memory = memory
        self.regions = regions
        self.stats = stats
        self.meta: dict[str, object] = meta if meta is not None else {}

    def __len__(self) -> int:
        return len(self._uops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelTrace(name={self.name!r}, uops={len(self._uops)})"

    @property
    def uops(self) -> list[Uop]:
        """Deprecated direct access to the µop list.

        .. deprecated::
            Use :meth:`materialize` for the full list or
            :meth:`iter_uops` for chunked streaming; ``.uops`` will be
            removed one release after the streaming redesign.
        """
        warnings.warn(
            "KernelTrace.uops is deprecated; use materialize() for the "
            "full list or iter_uops() for chunked streaming",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._uops

    def materialize(self) -> list[Uop]:
        """The full µop list in program order (already resident)."""
        return self._uops

    def iter_uops(self, chunk: int = DEFAULT_CHUNK) -> Iterator[list[Uop]]:
        """Yield the µop list in program-order chunks of ``<= chunk``.

        This is the :class:`repro.kernels.stream.TraceStream` contract;
        a materialized trace serves it with zero-copy slices, so
        consumers written against streams work unchanged on traces.
        """
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        uops = self._uops
        for start in range(0, len(uops), chunk):
            yield uops[start : start + chunk]

    def fresh_state(self) -> ArchState:
        """An architectural state over a *copy* of the memory image.

        Each consumer (reference run, pipeline run) gets its own memory
        so stores from one run cannot leak into another.
        """
        clone = Memory()
        for addr, value in self.memory.snapshot().items():
            clone.write(addr, value)
        return ArchState(clone)

    def reference_result(self) -> ArchState:
        """Run the in-order reference executor over the trace."""
        # Imported here: semantics imports nothing from this module, but
        # keeping the import local preserves the historical layering.
        from repro.isa.semantics import execute_trace

        return execute_trace(self._uops, self.fresh_state())

    def result_matrix(self, state: ArchState) -> np.ndarray:
        """Extract the stored C tile from a finished state.

        Requires the generator to have recorded ``c_rows`` /
        ``c_cols`` in :attr:`meta`.
        """
        rows = int(self.meta["c_rows"])
        cols = int(self.meta["c_cols"])
        region = self.regions["C"]
        out = np.zeros((rows, cols), dtype=np.float32)
        for row in range(rows):
            base = region.base + row * cols * 4
            out[row] = state.memory.read_vector(base, cols, 4)
        return out
