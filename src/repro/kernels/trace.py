"""The :class:`KernelTrace` container produced by the generators.

A trace bundles the µop list with the functional memory image it runs
against, the address regions of the matrices, and summary statistics.
Both the reference executor and the pipeline consume the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.registers import ArchState, Memory
from repro.isa.semantics import execute_trace
from repro.isa.uops import Uop, UopKind
from repro.memory.address import Region


@dataclass
class TraceStats:
    """µop-count breakdown of a trace."""

    fmas: int = 0
    vector_loads: int = 0
    broadcasts: int = 0
    embedded_broadcasts: int = 0
    stores: int = 0
    scalars: int = 0
    kmovs: int = 0
    vzeros: int = 0

    @property
    def total(self) -> int:
        return (
            self.fmas
            + self.vector_loads
            + self.broadcasts
            + self.stores
            + self.scalars
            + self.kmovs
            + self.vzeros
        )


def count_uops(trace: list[Uop]) -> TraceStats:
    """Tally a trace into a :class:`TraceStats`."""
    stats = TraceStats()
    for uop in trace:
        if uop.is_fma():
            stats.fmas += 1
            mem = uop.memory_operand()
            if mem is not None and mem.broadcast:
                stats.embedded_broadcasts += 1
        elif uop.kind == UopKind.VLOAD:
            stats.vector_loads += 1
        elif uop.kind == UopKind.VBCAST:
            stats.broadcasts += 1
        elif uop.kind == UopKind.VSTORE:
            stats.stores += 1
        elif uop.kind == UopKind.SCALAR:
            stats.scalars += 1
        elif uop.kind == UopKind.KMOV:
            stats.kmovs += 1
        elif uop.kind == UopKind.VZERO:
            stats.vzeros += 1
    return stats


@dataclass
class KernelTrace:
    """A generated kernel: µops + data + layout + metadata.

    Attributes:
        name: kernel label.
        uops: the µop list in program order.
        memory: functional memory image holding A, B (and C space).
        regions: matrix name → address region.
        stats: µop counts.
        meta: generator-specific metadata (tile geometry, sparsity
            levels, reduction depth, ...).
    """

    name: str
    uops: list[Uop]
    memory: Memory
    regions: dict[str, Region]
    stats: TraceStats
    meta: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.uops)

    def fresh_state(self) -> ArchState:
        """An architectural state over a *copy* of the memory image.

        Each consumer (reference run, pipeline run) gets its own memory
        so stores from one run cannot leak into another.
        """
        clone = Memory()
        for addr, value in self.memory.snapshot().items():
            clone.write(addr, value)
        return ArchState(clone)

    def reference_result(self) -> ArchState:
        """Run the in-order reference executor over the trace."""
        return execute_trace(self.uops, self.fresh_state())

    def result_matrix(self, state: ArchState) -> np.ndarray:
        """Extract the stored C tile from a finished state.

        Requires the generator to have recorded ``c_rows`` /
        ``c_cols`` in :attr:`meta`.
        """
        rows = int(self.meta["c_rows"])
        cols = int(self.meta["c_cols"])
        region = self.regions["C"]
        out = np.zeros((rows, cols), dtype=np.float32)
        for row in range(rows):
            base = region.base + row * cols * 4
            out[row] = state.memory.read_vector(base, cols, 4)
        return out
