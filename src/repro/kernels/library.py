"""The named kernels the paper's kernel-level figures study.

Each entry fixes the register tiling (which determines the effective
combination window and dependence distance — the quantities Figs. 15,
17, 18 and 19 turn on) and the broadcast pattern, while sparsity levels
and precision are supplied per experiment.

Tile choices follow the paper's stated properties:

* ``resnet3_2_bwd_input`` (Fig. 18a) — "uses 28 accumulators … each
  non-broadcasted multiplicand is reused 28 times, so the effective CW
  size is around 1 … common among kernels with the embedded broadcast
  pattern": 28 rows × 1 column vector, embedded.
* ``resnet5_1a_bwd_input`` (Fig. 18b) — "21 accumulators … each
  non-broadcasted multiplicand is reused 7 times, so the effective CW
  size is approximately 3": 7 rows × 3 column vectors, embedded.
* ``resnet3_2_bwd_weights`` (Fig. 17) — an embedded-broadcast kernel
  (the pattern whose L1 bandwidth the B$ relieves): 14 × 2.
* ``resnet2_2_fwd`` (Fig. 15) — a forward kernel in the explicit
  broadcast pattern: 4 × 6 (24 accumulators).
* ``resnet4_1a_bwd_input`` (Fig. 19) — mixed-precision
  backward-input kernel: 28 × 1, embedded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


@dataclass(frozen=True)
class KernelSpec:
    """A library entry: tiling plus provenance."""

    name: str
    tile: RegisterTile
    default_precision: Precision
    description: str
    paper_figure: str

    def config(
        self,
        broadcast_sparsity: float = 0.0,
        nonbroadcast_sparsity: float = 0.0,
        precision: Optional[Precision] = None,
        k_steps: int = 64,
        use_write_masks: bool = False,
        seed: int = 0,
    ) -> GemmKernelConfig:
        """Instantiate a trace config for this kernel."""
        return GemmKernelConfig(
            name=self.name,
            tile=self.tile,
            k_steps=k_steps,
            precision=precision if precision is not None else self.default_precision,
            broadcast_sparsity=broadcast_sparsity,
            nonbroadcast_sparsity=nonbroadcast_sparsity,
            use_write_masks=use_write_masks,
            seed=seed,
        )


KERNEL_LIBRARY: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in [
        KernelSpec(
            name="resnet2_2_fwd",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            default_precision=Precision.MIXED,
            description="ResNet2_2 forward propagation (Fig. 15 kernel)",
            paper_figure="Fig. 15",
        ),
        KernelSpec(
            name="resnet3_2_bwd_weights",
            tile=RegisterTile(14, 2, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description="ResNet3_2 back-propagation of weights (Fig. 17 kernel)",
            paper_figure="Fig. 17",
        ),
        KernelSpec(
            name="resnet3_2_bwd_input",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description=(
                "ResNet3_2 back-propagation of input: 28 accumulators, "
                "effective CW ~1 (Fig. 18a kernel)"
            ),
            paper_figure="Fig. 18a",
        ),
        KernelSpec(
            name="resnet5_1a_bwd_input",
            tile=RegisterTile(7, 3, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description=(
                "ResNet5_1a back-propagation of input: 21 accumulators, "
                "effective CW ~3 (Fig. 18b kernel)"
            ),
            paper_figure="Fig. 18b",
        ),
        KernelSpec(
            name="resnet4_1a_bwd_input",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.MIXED,
            description=(
                "ResNet4_1a mixed-precision back-propagation of input "
                "(Fig. 19 kernel)"
            ),
            paper_figure="Fig. 19",
        ),
        KernelSpec(
            name="explicit_wide",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            default_precision=Precision.FP32,
            description="Generic wide explicit-broadcast forward kernel",
            paper_figure="-",
        ),
        KernelSpec(
            name="embedded_tall",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description="Generic tall embedded-broadcast kernel",
            paper_figure="-",
        ),
    ]
}


def get_kernel(name: str) -> KernelSpec:
    """Look up a named kernel; raises with the available names."""
    try:
        return KERNEL_LIBRARY[name]
    except KeyError:
        names = ", ".join(sorted(KERNEL_LIBRARY))
        raise KeyError(f"unknown kernel {name!r}; available: {names}") from None
