"""The named kernels the paper's kernel-level figures study.

Each entry fixes the register tiling (which determines the effective
combination window and dependence distance — the quantities Figs. 15,
17, 18 and 19 turn on) and the broadcast pattern, while sparsity levels
and precision are supplied per experiment.

Tile choices follow the paper's stated properties:

* ``resnet3_2_bwd_input`` (Fig. 18a) — "uses 28 accumulators … each
  non-broadcasted multiplicand is reused 28 times, so the effective CW
  size is around 1 … common among kernels with the embedded broadcast
  pattern": 28 rows × 1 column vector, embedded.
* ``resnet5_1a_bwd_input`` (Fig. 18b) — "21 accumulators … each
  non-broadcasted multiplicand is reused 7 times, so the effective CW
  size is approximately 3": 7 rows × 3 column vectors, embedded.
* ``resnet3_2_bwd_weights`` (Fig. 17) — an embedded-broadcast kernel
  (the pattern whose L1 bandwidth the B$ relieves): 14 × 2.
* ``resnet2_2_fwd`` (Fig. 15) — a forward kernel in the explicit
  broadcast pattern: 4 × 6 (24 accumulators).
* ``resnet4_1a_bwd_input`` (Fig. 19) — mixed-precision
  backward-input kernel: 28 × 1, embedded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union
from collections.abc import Callable

from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import KernelTrace


class UnknownKernelError(KeyError):
    """An unknown kernel name; the message lists every registered one."""


@dataclass(frozen=True)
class KernelSpec:
    """A library entry: tiling plus provenance."""

    name: str
    tile: RegisterTile
    default_precision: Precision
    description: str
    paper_figure: str

    def config(
        self,
        broadcast_sparsity: float = 0.0,
        nonbroadcast_sparsity: float = 0.0,
        precision: Optional[Precision] = None,
        k_steps: int = 64,
        use_write_masks: bool = False,
        seed: int = 0,
    ) -> GemmKernelConfig:
        """Instantiate a trace config for this kernel."""
        return GemmKernelConfig(
            name=self.name,
            tile=self.tile,
            k_steps=k_steps,
            precision=precision if precision is not None else self.default_precision,
            broadcast_sparsity=broadcast_sparsity,
            nonbroadcast_sparsity=nonbroadcast_sparsity,
            use_write_masks=use_write_masks,
            seed=seed,
        )


@dataclass(frozen=True)
class NMKernelSpec(KernelSpec):
    """A library entry whose configs are N:M structured-sparse.

    ``config()`` has the same signature as the base class (sparsity
    levels, precision, k_steps, seed), so every sweep producer written
    against :class:`KernelSpec` drives structured kernels unchanged —
    the returned config is an
    :class:`repro.rivals.nm.NMKernelConfig`, whose broadcast sparsity
    is realised on the pattern lattice.
    """

    pattern: str = "2:4"

    def config(
        self,
        broadcast_sparsity: float = 0.0,
        nonbroadcast_sparsity: float = 0.0,
        precision: Optional[Precision] = None,
        k_steps: int = 64,
        use_write_masks: bool = False,
        seed: int = 0,
    ):
        from repro.rivals.nm import NMKernelConfig

        return NMKernelConfig(
            name=self.name,
            tile=self.tile,
            k_steps=k_steps,
            pattern=self.pattern,
            precision=precision if precision is not None else self.default_precision,
            broadcast_sparsity=broadcast_sparsity,
            nonbroadcast_sparsity=nonbroadcast_sparsity,
            use_write_masks=use_write_masks,
            seed=seed,
        )


KERNEL_LIBRARY: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in [
        KernelSpec(
            name="resnet2_2_fwd",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            default_precision=Precision.MIXED,
            description="ResNet2_2 forward propagation (Fig. 15 kernel)",
            paper_figure="Fig. 15",
        ),
        KernelSpec(
            name="resnet3_2_bwd_weights",
            tile=RegisterTile(14, 2, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description="ResNet3_2 back-propagation of weights (Fig. 17 kernel)",
            paper_figure="Fig. 17",
        ),
        KernelSpec(
            name="resnet3_2_bwd_input",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description=(
                "ResNet3_2 back-propagation of input: 28 accumulators, "
                "effective CW ~1 (Fig. 18a kernel)"
            ),
            paper_figure="Fig. 18a",
        ),
        KernelSpec(
            name="resnet5_1a_bwd_input",
            tile=RegisterTile(7, 3, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description=(
                "ResNet5_1a back-propagation of input: 21 accumulators, "
                "effective CW ~3 (Fig. 18b kernel)"
            ),
            paper_figure="Fig. 18b",
        ),
        KernelSpec(
            name="resnet4_1a_bwd_input",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.MIXED,
            description=(
                "ResNet4_1a mixed-precision back-propagation of input "
                "(Fig. 19 kernel)"
            ),
            paper_figure="Fig. 19",
        ),
        KernelSpec(
            name="explicit_wide",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            default_precision=Precision.FP32,
            description="Generic wide explicit-broadcast forward kernel",
            paper_figure="-",
        ),
        KernelSpec(
            name="embedded_tall",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description="Generic tall embedded-broadcast kernel",
            paper_figure="-",
        ),
        NMKernelSpec(
            name="nm24_fwd",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            default_precision=Precision.FP32,
            description=(
                "2:4 structured-sparse forward kernel (explicit "
                "broadcast) — the rival-mechanism comparison kernel"
            ),
            paper_figure="-",
            pattern="2:4",
        ),
        NMKernelSpec(
            name="nm48_bwd_input",
            tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
            default_precision=Precision.FP32,
            description=(
                "4:8 structured-sparse tall backward-input kernel "
                "(embedded broadcast)"
            ),
            paper_figure="-",
            pattern="4:8",
        ),
    ]
}


def get_kernel(spec: Union[str, KernelSpec]) -> KernelSpec:
    """The single name→kernel lookup every consumer goes through.

    Accepts a name (looked up in :data:`KERNEL_LIBRARY`) or an already
    resolved :class:`KernelSpec` (returned as-is, so call sites can be
    written once against "spec-ish" inputs).  Raises
    :class:`UnknownKernelError` (a ``KeyError``) listing the available
    names on an unknown name, ``TypeError`` on any other type.
    """
    if isinstance(spec, KernelSpec):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"kernel spec must be a name or KernelSpec, got {type(spec).__name__}"
        )
    try:
        return KERNEL_LIBRARY[spec]
    except KeyError:
        names = ", ".join(sorted(KERNEL_LIBRARY))
        raise UnknownKernelError(
            f"unknown kernel {spec!r}; available: {names}"
        ) from None


def trace_stream(config: object) -> GeneratorTraceStream:
    """Config → chunked trace stream, dispatched on the config type.

    The single config→generator registry: every consumer (CLI, serve,
    sweeps, surfaces, the executor) resolves its generator here instead
    of hard-wiring ``generate_*`` imports per kernel family.
    """
    factory = _STREAM_FACTORIES.get(type(config))
    if factory is None:
        known = ", ".join(sorted(t.__name__ for t in _STREAM_FACTORIES))
        raise TypeError(
            f"no trace generator registered for {type(config).__name__}; "
            f"known config types: {known}"
        )
    return factory(config)


def generate_trace(config: object) -> KernelTrace:
    """Config → materialized trace, through the same registry."""
    return trace_stream(config).to_trace()


# Populated at the bottom of the module: the import has to run after the
# KernelSpec machinery exists because sparsetrain validates against it.
_STREAM_FACTORIES: dict[type, Callable[..., GeneratorTraceStream]] = {}


def _register_generators() -> None:
    from repro.kernels.gemm import generate_gemm_stream
    from repro.kernels.sparsetrain import SparseTrainConfig, generate_sparsetrain_stream
    from repro.rivals.indexmac import IndexMACConfig, generate_indexmac_stream
    from repro.rivals.nm import NMKernelConfig, generate_nm_stream

    _STREAM_FACTORIES[GemmKernelConfig] = generate_gemm_stream
    _STREAM_FACTORIES[SparseTrainConfig] = generate_sparsetrain_stream
    _STREAM_FACTORIES[NMKernelConfig] = generate_nm_stream
    _STREAM_FACTORIES[IndexMACConfig] = generate_indexmac_stream


_register_generators()
