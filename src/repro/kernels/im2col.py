"""Functional im2col lowering — the semantics behind the GEMM dims.

The paper computes convolution "through (un)folding a big GEMM" [11]
(Sec. II-A).  :mod:`repro.kernels.conv` derives the GEMM *dimensions*;
this module implements the actual data transformation so the lowering
is verified semantically: ``conv2d_via_gemm`` must equal a direct
convolution, and its GEMM operand shapes must match
:meth:`ConvShape.gemm`.

Layouts: activations are ``(channels, height, width)``; weights are
``(out_channels, in_channels, kh, kw)``; the unfolded patch matrix is
``(out_pixels, in_channels·kh·kw)`` so the forward GEMM is
``patches @ weights.reshape(out_ch, -1).T`` — the broadcasted operand
(rows of ``patches``) is the activation side, as Table III requires.
"""

from __future__ import annotations


import numpy as np

from repro.kernels.conv import ConvShape


def im2col(
    activations: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold a ``(C, H, W)`` input into the patch matrix.

    Returns an ``(out_h·out_w, C·kernel·kernel)`` float32 matrix whose
    row *p* holds the receptive field of output pixel *p* (row-major
    over output pixels; channel-major then kh, kw within a row).
    """
    arr = np.asarray(activations, dtype=np.float32)
    if arr.ndim != 3:
        raise ValueError("activations must be (channels, height, width)")
    channels, height, width = arr.shape
    if kernel <= 0 or stride <= 0 or padding < 0:
        raise ValueError("bad kernel/stride/padding")
    padded = np.pad(
        arr, ((0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    columns = np.empty((out_h * out_w, channels * kernel * kernel), dtype=np.float32)
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[
                :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
            ]
            columns[oy * out_w + ox] = patch.reshape(-1)
    return columns


def conv2d_direct(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Reference direct convolution, ``(out_ch, out_h, out_w)``."""
    arr = np.asarray(activations, dtype=np.float32)
    w = np.asarray(weights, dtype=np.float32)
    out_ch, in_ch, kh, kw = w.shape
    if kh != kw:
        raise ValueError("square kernels only")
    if arr.shape[0] != in_ch:
        raise ValueError("channel mismatch")
    padded = np.pad(arr, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (arr.shape[1] + 2 * padding - kh) // stride + 1
    out_w = (arr.shape[2] + 2 * padding - kw) // stride + 1
    out = np.zeros((out_ch, out_h, out_w), dtype=np.float32)
    for oc in range(out_ch):
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[
                    :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw
                ]
                out[oc, oy, ox] = float(np.sum(patch * w[oc], dtype=np.float64))
    return out


def conv2d_via_gemm(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution as the unfolded GEMM of Sec. II-A.

    Returns ``(output, patches, weight_matrix)`` so callers can inspect
    the GEMM operands (e.g. to check Table III's operand assignment or
    feed the tile-level trace generators).
    """
    w = np.asarray(weights, dtype=np.float32)
    out_ch, in_ch, kernel, _ = w.shape
    patches = im2col(activations, kernel, stride, padding)
    weight_matrix = w.reshape(out_ch, -1)  # (out_ch, in_ch·kh·kw)
    flat = (
        patches.astype(np.float64) @ weight_matrix.astype(np.float64).T
    ).astype(np.float32)
    height, width = np.asarray(activations).shape[1:]
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    output = flat.T.reshape(out_ch, out_h, out_w)
    return output, patches, weight_matrix


def gemm_operands_match_shape(conv: ConvShape) -> bool:
    """Check that the functional lowering's operand dimensions match
    the analytical :meth:`ConvShape.gemm` used by the estimators."""
    from repro.kernels.conv import Phase

    rng = np.random.default_rng(0)
    activations = rng.normal(
        size=(conv.in_channels, conv.height, conv.width)
    ).astype(np.float32)
    weights = rng.normal(
        size=(conv.out_channels, conv.in_channels, conv.kernel, conv.kernel)
    ).astype(np.float32)
    _out, patches, weight_matrix = conv2d_via_gemm(
        activations, weights, conv.stride, conv.padding
    )
    geometry = conv.gemm(Phase.FORWARD)
    return (
        patches.shape == (geometry.m, geometry.k)
        and weight_matrix.shape == (geometry.n, geometry.k)
    )
