"""Serialize kernel traces to JSON and back.

Lets traces be archived, diffed, or consumed by external tools, and —
because the functional memory image rides along — a deserialized trace
still executes and still checks transparency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.isa.registers import Memory
from repro.isa.uops import MemOperand, Operand, RegOperand, Uop, UopKind
from repro.kernels.trace import KernelTrace, count_uops
from repro.memory.address import Region

FORMAT_VERSION = 1


def _operand_to_json(operand: Optional[Operand]) -> Optional[dict]:
    if operand is None:
        return None
    if isinstance(operand, RegOperand):
        return {"kind": "reg", "reg": operand.reg}
    return {
        "kind": "mem",
        "addr": operand.addr,
        "broadcast": operand.broadcast,
        "bf16": operand.bf16,
    }


def _operand_from_json(payload: Optional[dict]) -> Optional[Operand]:
    if payload is None:
        return None
    if payload["kind"] == "reg":
        return RegOperand(payload["reg"])
    return MemOperand(payload["addr"], payload["broadcast"], payload["bf16"])


def _uop_to_json(uop: Uop) -> dict:
    return {
        "kind": uop.kind.name,
        "dst": uop.dst,
        "accum": uop.accum,
        "src_a": _operand_to_json(uop.src_a),
        "src_b": _operand_to_json(uop.src_b),
        "wmask": uop.wmask,
        "imm": uop.imm,
        "bf16": uop.bf16,
        "tag": uop.tag,
    }


def _uop_from_json(payload: dict) -> Uop:
    return Uop(
        kind=UopKind[payload["kind"]],
        dst=payload["dst"],
        accum=payload["accum"],
        src_a=_operand_from_json(payload["src_a"]),
        src_b=_operand_from_json(payload["src_b"]),
        wmask=payload["wmask"],
        imm=payload["imm"],
        bf16=payload["bf16"],
        tag=payload["tag"],
    )


def trace_to_json(trace: KernelTrace) -> dict:
    """Serialize a trace (µops + memory + regions) to a JSON dict.

    Generator metadata that is not JSON-representable (numpy matrices,
    tile objects) is dropped; everything execution needs is kept.
    """
    simple_meta: dict[str, Any] = {}
    for key, value in trace.meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            simple_meta[key] = value
    return {
        "format": FORMAT_VERSION,
        "name": trace.name,
        "uops": [_uop_to_json(uop) for uop in trace.materialize()],
        "memory": {str(addr): value for addr, value in trace.memory.snapshot().items()},
        "regions": {
            name: {"base": region.base, "size": region.size_bytes}
            for name, region in trace.regions.items()
        },
        "meta": simple_meta,
    }


def trace_from_json(payload: dict) -> KernelTrace:
    """Reconstruct an executable trace from :func:`trace_to_json` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format {payload.get('format')!r}")
    memory = Memory()
    for addr, value in payload["memory"].items():
        memory.write(int(addr), value)
    uops = [_uop_from_json(entry) for entry in payload["uops"]]
    regions = {
        name: Region(name, spec["base"], spec["size"])
        for name, spec in payload["regions"].items()
    }
    return KernelTrace(
        name=payload["name"],
        uops=uops,
        memory=memory,
        regions=regions,
        stats=count_uops(uops),
        meta=dict(payload.get("meta", {})),
    )


def save_trace(trace: KernelTrace, path: Union[str, Path]) -> Path:
    """Write a trace to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_json(trace)))
    return path


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Read a trace back from :func:`save_trace` output."""
    return trace_from_json(json.loads(Path(path).read_text()))
