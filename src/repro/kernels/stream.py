"""The streaming trace contract: chunked µop production.

SAVE's evaluation sweeps hundreds of thousands of (BS, NBS) points;
materializing every point's full µop list before simulating it makes
*memory*, not CPU, the cap on sweep size.  This module defines the
producer/consumer contract that removes the materialization step:

* :class:`TraceStream` — the structural protocol every trace producer
  satisfies: a memory image, address regions and metadata available
  up front (they are O(tile), not O(trace)), plus
  :meth:`~TraceStream.iter_uops` yielding program-order µop chunks and
  a :class:`~repro.kernels.trace.TraceStats` that updates incrementally
  as chunks are drawn.
* :class:`GeneratorTraceStream` — the concrete stream the kernel
  generators return: wraps a restartable µop generator function, so
  the stream can be iterated any number of times (each pass re-derives
  the µops from the seeded builder — generation is deterministic).
* helpers — :func:`stream_uops` flattens a stream into a plain µop
  iterator (what :func:`repro.isa.semantics.execute_trace` consumes),
  :func:`ensure_stream` validates that an object honours the contract.

A materialized :class:`~repro.kernels.trace.KernelTrace` satisfies the
same protocol (its ``iter_uops`` slices the resident list), so every
consumer in the repo — the exact pipeline, the reference executor, the
fast engine's structure-of-arrays builder — is written once, against
streams.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable
from collections.abc import Callable, Iterator

import numpy as np

from repro.isa.registers import ArchState, Memory
from repro.isa.uops import Uop
from repro.kernels.trace import DEFAULT_CHUNK, KernelTrace, TraceStats
from repro.memory.address import Region

__all__ = [
    "GeneratorTraceStream",
    "TraceStream",
    "ensure_stream",
    "stream_uops",
]


@runtime_checkable
class TraceStream(Protocol):
    """Structural protocol for chunked trace producers.

    Everything except the µop stream itself is available before the
    first chunk is drawn: the functional memory image, the matrix
    regions and the generator metadata are O(tile geometry), while the
    µop stream is O(k_steps × tile) and therefore the part worth
    streaming.
    """

    name: str
    memory: Memory
    regions: dict[str, Region]
    meta: dict[str, object]
    stats: TraceStats

    def iter_uops(self, chunk: int = DEFAULT_CHUNK) -> Iterator[list[Uop]]:
        """Yield program-order µop chunks of at most ``chunk`` µops."""
        ...

    def materialize(self) -> list[Uop]:
        """The full µop list (the legacy, memory-proportional path)."""
        ...

    def fresh_state(self) -> ArchState:
        """A fresh architectural state over a copy of the memory image."""
        ...


class GeneratorTraceStream:
    """A restartable :class:`TraceStream` over a µop generator function.

    Args:
        name: kernel label.
        uop_source: zero-argument callable returning a fresh program-
            order µop iterator.  Called once per :meth:`iter_uops`
            pass, so the stream can be consumed repeatedly (the
            reference executor and the pipeline each take their own
            pass) — generation must be deterministic, which every
            seeded builder in :mod:`repro.kernels` is.
        memory: functional memory image (inputs written, outputs blank).
        regions: matrix name → address region.
        meta: generator metadata (tile, sparsity levels, matrices ...).

    :attr:`stats` restarts from zero on each :meth:`iter_uops` pass and
    accumulates per chunk; after a full pass it equals
    :func:`repro.kernels.trace.count_uops` of the materialized trace.
    """

    def __init__(
        self,
        name: str,
        uop_source: Callable[[], Iterator[Uop]],
        memory: Memory,
        regions: dict[str, Region],
        meta: dict[str, object],
    ) -> None:
        self.name = name
        self._uop_source = uop_source
        self.memory = memory
        self.regions = regions
        self.meta = meta
        self.stats = TraceStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneratorTraceStream(name={self.name!r})"

    def iter_uops(self, chunk: int = DEFAULT_CHUNK) -> Iterator[list[Uop]]:
        """Generate and yield µop chunks, updating :attr:`stats` as it goes."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        stats = TraceStats()
        self.stats = stats
        buffer: list[Uop] = []
        for uop in self._uop_source():
            stats.add(uop)
            buffer.append(uop)
            if len(buffer) >= chunk:
                yield buffer
                buffer = []
        if buffer:
            yield buffer

    def materialize(self) -> list[Uop]:
        """Generate the full µop list in one pass (updates :attr:`stats`)."""
        uops: list[Uop] = []
        for block in self.iter_uops():
            uops.extend(block)
        return uops

    def to_trace(self) -> KernelTrace:
        """Materialize into a legacy :class:`KernelTrace` container."""
        uops = self.materialize()
        return KernelTrace(
            name=self.name,
            uops=uops,
            memory=self.memory,
            regions=self.regions,
            stats=self.stats,
            meta=self.meta,
        )

    def fresh_state(self) -> ArchState:
        """An architectural state over a *copy* of the memory image."""
        clone = Memory()
        for addr, value in self.memory.snapshot().items():
            clone.write(addr, value)
        return ArchState(clone)

    def reference_result(self) -> ArchState:
        """Run the in-order reference executor over the stream."""
        from repro.isa.semantics import execute_trace

        return execute_trace(stream_uops(self), self.fresh_state())

    def result_matrix(self, state: ArchState) -> np.ndarray:
        """Extract the stored C tile from a finished state."""
        rows = int(self.meta["c_rows"])
        cols = int(self.meta["c_cols"])
        region = self.regions["C"]
        out = np.zeros((rows, cols), dtype=np.float32)
        for row in range(rows):
            base = region.base + row * cols * 4
            out[row] = state.memory.read_vector(base, cols, 4)
        return out


def stream_uops(
    stream: TraceStream, chunk: int = DEFAULT_CHUNK
) -> Iterator[Uop]:
    """Flatten a stream's chunks into a plain program-order µop iterator."""
    for block in stream.iter_uops(chunk):
        yield from block


def ensure_stream(source: object) -> TraceStream:
    """Validate that ``source`` honours the :class:`TraceStream` contract.

    Accepts both generator-backed streams and materialized
    :class:`~repro.kernels.trace.KernelTrace` objects (the latter serve
    chunks by slicing).  Raises ``TypeError`` otherwise, naming what is
    missing — a consumer failing fast beats one failing mid-simulation.
    """
    missing = [
        attr
        for attr in ("name", "memory", "regions", "stats", "iter_uops")
        if not hasattr(source, attr)
    ]
    if missing:
        raise TypeError(
            f"{type(source).__name__} does not satisfy the TraceStream "
            f"contract (missing: {', '.join(missing)})"
        )
    return source  # type: ignore[return-value]
