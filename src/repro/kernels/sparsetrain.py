"""SparseTrain-style software sparsity skipping (related work [20]).

SparseTrain (Gong et al., PACT 2020) is the paper's software-only
comparator: the GEMM kernel *tests the broadcasted scalar* and branches
around the whole row of VFMAs when it is zero.  It therefore

* exploits only *broadcasted* sparsity (a zero in the non-broadcasted
  vector cannot be skipped in software),
* pays branch/test overhead on every broadcast, and
* runs on an unmodified machine (no SAVE hardware).

This generator emits the software-skipped trace for the same GEMM data
layout as :mod:`repro.kernels.gemm`: for every (row, step) broadcast it
inserts test/branch scalar µops; when the broadcast value is zero, the
row's VFMAs are *omitted from the instruction stream* (that is the
point of the software scheme) at the cost of the branch µops plus a
configurable misprediction penalty (sparsity is data-dependent and
unpredictable, Sec. I of the SAVE paper).

Because the skipped VFMAs would have contributed exactly zero, the
trace still computes the same GEMM — the test suite checks this against
the dense trace's reference result.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.isa.uops import RegOperand, Uop, scalar_op, vbcast, vfma, vload, vstore, vzero
from repro.kernels.gemm import GemmKernelConfig, _GemmTraceBuilder
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import BroadcastPattern, Precision
from repro.kernels.trace import KernelTrace


@dataclass(frozen=True)
class SparseTrainConfig:
    """Software-skipping parameters layered on a GEMM kernel config.

    Args:
        gemm: the underlying kernel (must be FP32 explicit-broadcast —
            the pattern SparseTrain's code transformation targets).
        branch_overhead_uops: scalar µops per broadcast for the
            test-and-branch sequence.
        misprediction_rate: fraction of *skip decisions that differ from
            the previous one* charged a flush penalty; unstructured
            sparsity makes the branch hard to predict.
        misprediction_penalty_uops: front-end bubbles per mispredict,
            modeled as dead scalar µops.
    """

    gemm: GemmKernelConfig
    branch_overhead_uops: int = 2
    misprediction_rate: float = 0.5
    misprediction_penalty_uops: int = 14

    def __post_init__(self) -> None:
        if self.gemm.precision != Precision.FP32:
            raise ValueError("SparseTrain transform models FP32 kernels")
        if self.gemm.tile.pattern != BroadcastPattern.EXPLICIT:
            raise ValueError("SparseTrain transform targets explicit broadcast")
        if not 0.0 <= self.misprediction_rate <= 1.0:
            raise ValueError("misprediction_rate must be in [0, 1]")


def _sparsetrain_uops(
    builder: _GemmTraceBuilder, config: SparseTrainConfig
) -> Iterator[Uop]:
    """Generate the software-skipped µop stream in program order.

    Each call draws a *fresh* misprediction RNG from the derived seed,
    so repeated passes over the stream are bit-identical (the streaming
    restartability contract).
    """
    tile, gemm = builder.tile, config.gemm
    rng = np.random.default_rng(gemm.seed + 1)

    for accum in range(tile.accumulators):
        yield vzero(accum)

    previous_skip = False
    for k_step in range(gemm.k_steps):
        for _ in range(gemm.scalar_overhead_per_step):
            yield scalar_op(tag=f"loop-k{k_step}")
        for j in range(tile.col_vectors):
            yield vload(builder.b_reg(j), builder.b_vector_addr(k_step, j))
        for row in range(tile.rows):
            # The software test: load the scalar, compare, branch.
            for _ in range(config.branch_overhead_uops):
                yield scalar_op(tag=f"test-r{row}k{k_step}")
            skip = builder.a[row, k_step] == 0
            if skip != previous_skip and rng.random() < config.misprediction_rate:
                for _ in range(config.misprediction_penalty_uops):
                    yield scalar_op(tag="mispredict")
            previous_skip = skip
            if skip:
                continue
            a_reg = builder.a_regs[row % 2]
            yield vbcast(a_reg, builder.a_addr(row, k_step))
            for j in range(tile.col_vectors):
                yield vfma(
                    builder.acc_reg(row, j),
                    RegOperand(a_reg),
                    RegOperand(builder.b_reg(j)),
                    tag=f"k{k_step}r{row}c{j}",
                )

    for row in range(tile.rows):
        for j in range(tile.col_vectors):
            yield vstore(builder.acc_reg(row, j), builder.c_addr(row, j))


def generate_sparsetrain_stream(config: SparseTrainConfig) -> GeneratorTraceStream:
    """A chunked µop stream for the software-skipped kernel.

    The data layout and values are identical to the dense trace for the
    same :class:`GemmKernelConfig` (same seed ⇒ same matrices); only the
    instruction stream differs.
    """
    builder = _GemmTraceBuilder(config.gemm)
    tile, gemm = builder.tile, config.gemm
    # Skips depend only on the (seeded) data, not on the misprediction
    # RNG, so the count is known before any µop is generated.
    skipped_rows = int(
        sum(
            builder.a[row, k_step] == 0
            for k_step in range(gemm.k_steps)
            for row in range(tile.rows)
        )
    )
    meta = {
        "tile": tile,
        "k_steps": gemm.k_steps,
        "precision": gemm.precision,
        "broadcast_sparsity": gemm.broadcast_sparsity,
        "nonbroadcast_sparsity": gemm.nonbroadcast_sparsity,
        "c_rows": tile.rows,
        "c_cols": tile.col_vectors * 16,
        "a_matrix": builder.a,
        "b_matrix": builder.b,
        "skipped_rows": skipped_rows,
    }
    return GeneratorTraceStream(
        name=f"sparsetrain-{gemm.name}",
        uop_source=lambda: _sparsetrain_uops(builder, config),
        memory=builder.memory,
        regions=builder.regions,
        meta=meta,
    )


def generate_sparsetrain_trace(config: SparseTrainConfig) -> KernelTrace:
    """Generate the materialized software-skipped trace."""
    return generate_sparsetrain_stream(config).to_trace()
