"""Register-tile geometry for GEMM inner kernels.

A DNNL-style AVX-512 GEMM microkernel keeps a tile of C in vector
registers: ``rows × col_vectors`` accumulators, each 16 FP32 lanes wide.
Per reduction step it broadcasts one A scalar per row and multiplies it
with each of ``col_vectors`` B vectors.

The tile geometry determines the scheduling quantities the paper's
Sec. VII-D discusses:

* **dependence distance** — each accumulator is updated once per
  reduction step, so the RAW distance between VFMAs on the same
  accumulator equals the accumulator count.
* **effective combination window** — VFMAs that reuse the *same*
  non-broadcasted B vector share a sparsity pattern and conflict under
  vertical coalescing, so the effective CW is the number of *distinct*
  B vectors in flight: ``col_vectors`` (the CW size divided by the
  per-register reuse count, as the paper puts it).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.isa.registers import NUM_VREGS


class BroadcastPattern(Enum):
    """How the broadcasted multiplicand reaches the VFMA (Sec. II-B)."""

    #: Broadcast once into a register with VBCAST, then reuse it.
    EXPLICIT = "explicit"
    #: Use a broadcast *memory operand* on every VFMA.
    EMBEDDED = "embedded"


class Precision(Enum):
    """Arithmetic mode of the kernel."""

    FP32 = "fp32"
    #: BF16 multiplicands, FP32 accumulators (VDPBF16PS).
    MIXED = "bf16"


@dataclass(frozen=True)
class RegisterTile:
    """The C-tile register blocking of a GEMM microkernel.

    Args:
        rows: A-rows per tile (one broadcast scalar each per step).
        col_vectors: B vectors per tile (16 FP32 columns each).
        pattern: explicit or embedded broadcast.
    """

    rows: int
    col_vectors: int
    pattern: BroadcastPattern = BroadcastPattern.EXPLICIT

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.col_vectors <= 0:
            raise ValueError("tile dimensions must be positive")
        if self.registers_needed > NUM_VREGS:
            raise ValueError(
                f"tile {self.rows}x{self.col_vectors} needs "
                f"{self.registers_needed} registers (> {NUM_VREGS})"
            )

    @property
    def accumulators(self) -> int:
        """Number of accumulator registers (= C-tile vectors)."""
        return self.rows * self.col_vectors

    @property
    def registers_needed(self) -> int:
        """Architectural registers the microkernel occupies.

        Explicit broadcast keeps all B vectors resident plus two
        rotating A-broadcast registers; embedded broadcast needs only
        two rotating B registers (A comes from memory operands).
        """
        if self.pattern == BroadcastPattern.EXPLICIT:
            return self.accumulators + self.col_vectors + 2
        return self.accumulators + 2

    @property
    def dependence_distance(self) -> int:
        """VFMAs between successive updates of one accumulator."""
        return self.accumulators

    @property
    def b_vector_reuse(self) -> int:
        """Times each non-broadcasted B vector is reused per step."""
        return self.rows

    @property
    def effective_cw(self) -> int:
        """Effective combination window under vertical coalescing.

        Accumulator count divided by per-B-vector reuse — i.e. the
        number of distinct non-broadcasted sparsity patterns in flight.
        """
        return self.col_vectors

    def fmas_per_step(self) -> int:
        """VFMAs per reduction step (one per accumulator)."""
        return self.accumulators
