"""Convolution-layer shapes and their lowering to GEMM.

A convolution is computed as GEMM via im2col (Sec. II-A); training
needs three GEMMs per layer (the paper's phases, Table III):

* **forward** — ``C[pixels, out_ch] = im2col(in)[pixels, K] × W[K, out_ch]``
  with ``K = in_ch · kh · kw``.  The *broadcasted* operand is the input
  activation, the *non-broadcasted* operand is the weights.
* **backward input** — ``dIn = dOut × Wᵀ``: broadcast = output
  gradient, non-broadcast = weights.
* **backward weight** — ``dW = im2col(in)ᵀ × dOut``: broadcast = input
  activation, non-broadcast = output gradient.

This operand assignment reproduces Table III exactly: e.g. dense
ResNet-50 has sparsity only in forward-BS (activations) and
backward-weight-BS, because BatchNorm eliminates output-gradient
sparsity; pruned ResNet-50's backward-input has NBS (pruned weights)
but no BS — the property Fig. 18 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Phase(Enum):
    """GEMM phases of one layer during training/inference."""

    FORWARD = "forward"
    BACKWARD_INPUT = "backward_input"
    BACKWARD_WEIGHT = "backward_weight"


class SparsitySource(Enum):
    """What tensor feeds each GEMM operand's sparsity."""

    INPUT_ACTIVATION = "input_activation"
    OUTPUT_GRADIENT = "output_gradient"
    WEIGHTS = "weights"
    NONE = "none"


#: Phase → (broadcasted-operand source, non-broadcasted-operand source).
PHASE_SPARSITY_SOURCES = {
    Phase.FORWARD: (SparsitySource.INPUT_ACTIVATION, SparsitySource.WEIGHTS),
    Phase.BACKWARD_INPUT: (SparsitySource.OUTPUT_GRADIENT, SparsitySource.WEIGHTS),
    Phase.BACKWARD_WEIGHT: (
        SparsitySource.INPUT_ACTIVATION,
        SparsitySource.OUTPUT_GRADIENT,
    ),
}


@dataclass(frozen=True)
class GemmGeometry:
    """Whole-layer GEMM dimensions for one phase.

    ``m`` indexes the broadcasted operand's rows, ``n`` the vectorised
    columns, ``k`` the reduction depth; MACs = m·n·k.
    """

    m: int
    n: int
    k: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the whole GEMM."""
        return self.m * self.n * self.k

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("GEMM dimensions must be positive")


@dataclass(frozen=True)
class ConvShape:
    """One convolutional layer.

    Args:
        name: layer label (e.g. "conv3_2").
        in_channels / out_channels: channel counts.
        height / width: *input* spatial size.
        kernel: square kernel size.
        stride: spatial stride.
        padding: symmetric zero padding.
    """

    name: str
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel: int = 3
    stride: int = 1
    padding: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.height, self.width) <= 0:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if self.kernel <= 0 or self.stride <= 0 or self.padding < 0:
            raise ValueError(f"{self.name}: bad kernel/stride/padding")

    @property
    def out_height(self) -> int:
        """Output feature-map height."""
        return (self.height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output feature-map width."""
        return (self.width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def weight_count(self) -> int:
        """Number of weights in the layer."""
        return self.in_channels * self.out_channels * self.kernel * self.kernel

    def gemm(self, phase: Phase, batch: int = 1) -> GemmGeometry:
        """The GEMM dimensions for one phase (per mini-batch)."""
        k_fwd = self.in_channels * self.kernel * self.kernel
        k_bwd = self.out_channels * self.kernel * self.kernel
        if phase == Phase.FORWARD:
            return GemmGeometry(m=self.out_pixels * batch, n=self.out_channels, k=k_fwd)
        if phase == Phase.BACKWARD_INPUT:
            return GemmGeometry(
                m=self.height * self.width * batch, n=self.in_channels, k=k_bwd
            )
        return GemmGeometry(m=k_fwd, n=self.out_channels, k=self.out_pixels * batch)

    def macs(self, phase: Phase = Phase.FORWARD, batch: int = 1) -> int:
        """MAC count for one phase over a mini-batch."""
        return self.gemm(phase, batch).macs

    def activation_bytes(self, batch: int = 1, element_bytes: int = 4) -> int:
        """Input activation footprint (for memory-boundedness)."""
        return self.in_channels * self.height * self.width * batch * element_bytes

    def weight_bytes(self, element_bytes: int = 4) -> int:
        """Weight footprint."""
        return self.weight_count * element_bytes

    def output_bytes(self, batch: int = 1, element_bytes: int = 4) -> int:
        """Output activation footprint."""
        return self.out_channels * self.out_pixels * batch * element_bytes
