"""Register-tiled GEMM µop-trace generation.

Generates the steady-state inner loop of a DNNL-style AVX-512 GEMM
microkernel over a C tile of ``rows × col_vectors`` accumulators
(Sec. II of the paper, Fig. 1), in either broadcast pattern:

* **explicit** (row-major schedule): per reduction step, load the
  ``col_vectors`` B vectors, then per row broadcast one A scalar into a
  register (``VBCAST``) and fuse it with every B vector.
* **embedded** (column-major schedule): per reduction step, per B
  vector, load it and issue one VFMA per row with an *embedded
  broadcast memory operand* reading A — the pattern whose L1-D
  bandwidth pressure motivates the broadcast cache (Sec. IV-A).

Mixed precision packs two reduction levels per step: A pairs are
broadcast with 32-bit granularity (m32bcst) and B vectors hold 32 BF16
lanes in VNNI-interleaved layout.

The generated trace carries real data (with the requested broadcasted /
non-broadcasted sparsity), so functional execution produces the actual
GEMM result — the transparency tests depend on this.

Production is **streaming-first**: :func:`generate_gemm_stream` returns
a restartable :class:`repro.kernels.stream.GeneratorTraceStream` whose
memory image and regions exist up front while µops are generated
chunk-by-chunk on demand; :func:`generate_gemm_trace` materializes the
same stream into a legacy :class:`KernelTrace` (bit-identical µop
order).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.isa.datatypes import BF16_LANES, FP32_LANES, bf16_round
from repro.isa.registers import Memory
from repro.isa.uops import MemOperand, RegOperand, Uop, kmov, scalar_op, vbcast, vfma
from repro.isa.uops import vdpbf16, vload, vstore, vzero
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import KernelTrace
from repro.memory.address import make_regions
from repro.sparsity.generators import sparse_matrix


@dataclass(frozen=True)
class GemmKernelConfig:
    """Parameters for one generated GEMM inner-loop trace.

    Args:
        name: kernel label (used in experiment output).
        tile: register-tile geometry and broadcast pattern.
        k_steps: reduction steps (mixed precision consumes two
            reduction levels per step).
        precision: FP32 or mixed (BF16×BF16→FP32).
        broadcast_sparsity: element sparsity of the broadcasted A.
        nonbroadcast_sparsity: element sparsity of the non-broadcasted B.
        use_write_masks: predicate VFMAs with the non-zero pattern of
            their B vector (models dropped-weight masking).
        scalar_overhead_per_step: loop-control µops per reduction step.
        seed: RNG seed for the sparse data.
    """

    name: str
    tile: RegisterTile
    k_steps: int
    precision: Precision = Precision.FP32
    broadcast_sparsity: float = 0.0
    nonbroadcast_sparsity: float = 0.0
    use_write_masks: bool = False
    scalar_overhead_per_step: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k_steps <= 0:
            raise ValueError("k_steps must be positive")
        for level in (self.broadcast_sparsity, self.nonbroadcast_sparsity):
            if not 0.0 <= level <= 1.0:
                raise ValueError("sparsity levels must be in [0, 1]")

    @property
    def k_depth(self) -> int:
        """Reduction levels covered (2 per step for mixed precision)."""
        return self.k_steps * (2 if self.precision == Precision.MIXED else 1)


class _GemmTraceBuilder:
    """Stateful builder for one kernel trace.

    Construction fixes the data layout and writes the functional memory
    image (the only RNG-consuming phase); :meth:`iter_uops` then
    *generates* the µop stream lazily and deterministically, so one
    builder can feed any number of streaming passes.

    ``matrices`` lets a caller supply pre-built (A, B) operand matrices
    — the structured-sparsity generators in :mod:`repro.rivals.nm`
    prune their own data and reuse this builder's layout and emission —
    in which case the builder consumes no RNG at all.
    """

    def __init__(
        self,
        config: GemmKernelConfig,
        matrices: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> None:
        self.config = config
        self.tile = config.tile
        self.mixed = config.precision == Precision.MIXED
        self.element_bytes = 2 if self.mixed else 4
        self.memory = Memory()

        rows, cv = self.tile.rows, self.tile.col_vectors
        k_depth = config.k_depth
        if matrices is None:
            rng = np.random.default_rng(config.seed)
            self.a = sparse_matrix((rows, k_depth), config.broadcast_sparsity, rng)
            self.b = sparse_matrix(
                (k_depth, cv * FP32_LANES), config.nonbroadcast_sparsity, rng
            )
        else:
            self.a, self.b = matrices
            if self.a.shape != (rows, k_depth) or self.b.shape != (
                k_depth,
                cv * FP32_LANES,
            ):
                raise ValueError("supplied operand matrices do not match the tile")
        if self.mixed:
            self.a = bf16_round(self.a)
            self.b = bf16_round(self.b)

        # Pad each A row to an odd number of cache lines so the rows of
        # tall tiles spread across every direct-mapped B$ slot instead
        # of aliasing (the padding a tuned GEMM's packing buffer uses).
        row_bytes = k_depth * self.element_bytes
        row_lines = max(1, -(-row_bytes // 64))
        if row_lines % 2 == 0:
            row_lines += 1
        self.a_row_stride = row_lines * 64
        a_bytes = rows * self.a_row_stride
        b_bytes = self.b.size * self.element_bytes
        c_bytes = rows * cv * FP32_LANES * 4
        self.regions = make_regions(("A", a_bytes), ("B", b_bytes), ("C", c_bytes))
        self._write_matrices()

        n_acc = self.tile.accumulators
        self.acc_reg = lambda i, j: i * cv + j
        if self.tile.pattern == BroadcastPattern.EXPLICIT:
            self.b_reg = lambda j: n_acc + j
            self.a_regs = (n_acc + cv, n_acc + cv + 1)
        else:
            self.b_rot = (n_acc, n_acc + 1)

    # ------------------------------------------------------------------
    # Data layout
    # ------------------------------------------------------------------

    def a_addr(self, row: int, k_level: int) -> int:
        """Byte address of A[row, k_level] (row-major, padded rows)."""
        addr = (
            self.regions["A"].base
            + row * self.a_row_stride
            + k_level * self.element_bytes
        )
        if addr >= self.regions["A"].end:
            raise IndexError("A element outside its region")
        return addr

    def b_vector_addr(self, k_step: int, j: int) -> int:
        """Byte address of the packed B vector for (step, column block)."""
        vec_index = k_step * self.tile.col_vectors + j
        return self.regions["B"].base + vec_index * 64

    def c_addr(self, row: int, j: int) -> int:
        """Byte address of the C tile vector for (row, column block)."""
        index = (row * self.tile.col_vectors + j) * FP32_LANES
        return self.regions["C"].element_address(index, 4)

    def _write_matrices(self) -> None:
        memory = self.memory
        rows, cv = self.tile.rows, self.tile.col_vectors
        for row in range(rows):
            for k_level in range(self.config.k_depth):
                memory.write(self.a_addr(row, k_level), self.a[row, k_level])
        for k_step in range(self.config.k_steps):
            for j in range(cv):
                memory.write_vector(
                    self.b_vector_addr(k_step, j),
                    self._packed_b_vector(k_step, j),
                    self.element_bytes,
                )

    def _packed_b_vector(self, k_step: int, j: int) -> np.ndarray:
        """B vector in register layout for one (step, column block).

        FP32: B[k, j*16 : (j+1)*16].  Mixed: VNNI interleave — lane
        ``2g + p`` holds B[2*k + p, j*16 + g].
        """
        cols = slice(j * FP32_LANES, (j + 1) * FP32_LANES)
        if not self.mixed:
            return self.b[k_step, cols]
        even = self.b[2 * k_step, cols]
        odd = self.b[2 * k_step + 1, cols]
        packed = np.empty(BF16_LANES, dtype=np.float32)
        packed[0::2] = even
        packed[1::2] = odd
        return packed

    # ------------------------------------------------------------------
    # µop emission
    # ------------------------------------------------------------------

    def _write_mask_bits(self, k_step: int, j: int) -> int:
        """Non-zero pattern of the packed B vector, per accumulator lane."""
        packed = self._packed_b_vector(k_step, j)
        bits = 0
        for lane in range(FP32_LANES):
            if self.mixed:
                alive = packed[2 * lane] != 0 or packed[2 * lane + 1] != 0
            else:
                alive = packed[lane] != 0
            if alive:
                bits |= 1 << lane
        return bits

    def _fma(self, accum: int, a_operand, b_operand, wmask, tag) -> Uop:
        if self.mixed:
            return vdpbf16(accum, a_operand, b_operand, wmask=wmask, tag=tag)
        return vfma(accum, a_operand, b_operand, wmask=wmask, tag=tag)

    def _emit_step_explicit(self, k_step: int) -> Iterator[Uop]:
        tile, cfg = self.tile, self.config
        for j in range(tile.col_vectors):
            yield vload(self.b_reg(j), self.b_vector_addr(k_step, j), bf16=self.mixed)
            if cfg.use_write_masks:
                yield kmov(1 + j % 7, self._write_mask_bits(k_step, j))
        for row in range(tile.rows):
            a_reg = self.a_regs[row % 2]
            level = k_step * (2 if self.mixed else 1)
            yield vbcast(a_reg, self.a_addr(row, level), bf16=self.mixed)
            for j in range(tile.col_vectors):
                wmask = (1 + j % 7) if cfg.use_write_masks else None
                yield self._fma(
                    self.acc_reg(row, j),
                    RegOperand(a_reg),
                    RegOperand(self.b_reg(j)),
                    wmask,
                    tag=f"k{k_step}r{row}c{j}",
                )

    def _emit_step_embedded(self, k_step: int) -> Iterator[Uop]:
        tile, cfg = self.tile, self.config
        for j in range(tile.col_vectors):
            b_reg = self.b_rot[(k_step * tile.col_vectors + j) % 2]
            yield vload(b_reg, self.b_vector_addr(k_step, j), bf16=self.mixed)
            if cfg.use_write_masks:
                yield kmov(1 + j % 7, self._write_mask_bits(k_step, j))
            level = k_step * (2 if self.mixed else 1)
            for row in range(tile.rows):
                wmask = (1 + j % 7) if cfg.use_write_masks else None
                operand = MemOperand(
                    self.a_addr(row, level), broadcast=True, bf16=self.mixed
                )
                yield self._fma(
                    self.acc_reg(row, j),
                    operand,
                    RegOperand(b_reg),
                    wmask,
                    tag=f"k{k_step}r{row}c{j}",
                )

    def iter_uops(self) -> Iterator[Uop]:
        """Generate the full µop stream in program order, lazily."""
        tile, cfg = self.tile, self.config
        for accum in range(tile.accumulators):
            yield vzero(accum)
        for k_step in range(cfg.k_steps):
            for _ in range(cfg.scalar_overhead_per_step):
                yield scalar_op(tag=f"loop-k{k_step}")
            if tile.pattern == BroadcastPattern.EXPLICIT:
                yield from self._emit_step_explicit(k_step)
            else:
                yield from self._emit_step_embedded(k_step)
        for row in range(tile.rows):
            for j in range(tile.col_vectors):
                yield vstore(self.acc_reg(row, j), self.c_addr(row, j))

    def trace_meta(self) -> dict[str, object]:
        """Generator metadata shared by the stream and the trace."""
        tile, cfg = self.tile, self.config
        return {
            "tile": tile,
            "k_steps": cfg.k_steps,
            "precision": cfg.precision,
            "broadcast_sparsity": cfg.broadcast_sparsity,
            "nonbroadcast_sparsity": cfg.nonbroadcast_sparsity,
            "use_write_masks": cfg.use_write_masks,
            "scalar_overhead_per_step": cfg.scalar_overhead_per_step,
            "c_rows": tile.rows,
            "c_cols": tile.col_vectors * FP32_LANES,
            "a_matrix": self.a,
            "b_matrix": self.b,
        }

    def stream(self) -> GeneratorTraceStream:
        """A restartable chunked stream over this builder's µops."""
        return GeneratorTraceStream(
            name=self.config.name,
            uop_source=self.iter_uops,
            memory=self.memory,
            regions=self.regions,
            meta=self.trace_meta(),
        )

    def build(self) -> KernelTrace:
        """Materialize the whole trace (the legacy, list-backed path)."""
        return self.stream().to_trace()


def generate_gemm_stream(config: GemmKernelConfig) -> GeneratorTraceStream:
    """A chunked µop stream for one GEMM inner-loop kernel.

    The memory image and regions are built eagerly (they are O(tile));
    µops are generated on demand, chunk by chunk, every time the stream
    is iterated.
    """
    return _GemmTraceBuilder(config).stream()


def generate_gemm_trace(config: GemmKernelConfig) -> KernelTrace:
    """Generate the materialized µop trace for one GEMM inner-loop kernel."""
    return _GemmTraceBuilder(config).build()


def expected_c_matrix(trace: KernelTrace) -> np.ndarray:
    """Mathematically expected C tile (float64 accumulation).

    Used to sanity-check the functional semantics against plain linear
    algebra; bit-exactness is *not* expected (accumulation order and
    precision differ), closeness is.
    """
    a = np.asarray(trace.meta["a_matrix"], dtype=np.float64)
    b = np.asarray(trace.meta["b_matrix"], dtype=np.float64)
    return (a @ b).astype(np.float32)
