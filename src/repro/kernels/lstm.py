"""LSTM-cell shapes and their lowering to GEMM.

An LSTM cell's work is one GEMM computing all four gates
(Sec. II-A: "LSTMs use GEMM as a building block"):

    gates[4·hidden, batch] = W[4·hidden, input + hidden] × x[input + hidden, batch]

where ``x`` concatenates the cell input with the previous hidden
state.  The broadcasted operand is the activation vector ``x`` (its
sparsity comes from dropout — and is diluted by the concatenation with
the previous output, which the paper notes); the non-broadcasted
operand is the weight matrix (sparse when pruned).

Training merges the backward-input and backward-weight phases for
LSTMs (Table III shows a single "backward" column for GNMT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.conv import GemmGeometry, Phase


@dataclass(frozen=True)
class LstmShape:
    """One LSTM layer.

    Args:
        name: layer label (e.g. "encoder_l0").
        hidden: hidden-state width.
        input_size: input width (before concatenation with hidden).
        seq_len: time steps per sample.
        dropout: dropout rate applied to activations (GNMT: 0.2).
    """

    name: str
    hidden: int
    input_size: int
    seq_len: int = 1
    dropout: float = 0.2

    def __post_init__(self) -> None:
        if min(self.hidden, self.input_size, self.seq_len) <= 0:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"{self.name}: dropout must be in [0, 1)")

    @property
    def weight_count(self) -> int:
        """Weights in the cell's gate GEMM."""
        return 4 * self.hidden * (self.input_size + self.hidden)

    def gemm(self, phase: Phase = Phase.FORWARD, batch: int = 1) -> GemmGeometry:
        """Gate-GEMM dimensions for one time step over a mini-batch.

        The backward pass (either backward phase — they are merged for
        LSTMs) has the same aggregate GEMM volume as forward, with the
        transposed weight matrix.
        """
        return GemmGeometry(
            m=batch,
            n=4 * self.hidden,
            k=self.input_size + self.hidden,
        )

    def macs(self, phase: Phase = Phase.FORWARD, batch: int = 1) -> int:
        """MACs for one phase of the *whole sequence* over a batch."""
        return self.gemm(phase, batch).macs * self.seq_len

    def activation_sparsity(self) -> float:
        """Effective broadcast-side sparsity after concatenation.

        Dropout zeroes ``dropout`` of the cell input; the concatenated
        previous hidden state is dense, so the mix halves the effective
        rate for layers past the first.  We use the paper's flat 20%
        (it models GNMT's activation sparsity as constant).
        """
        return self.dropout
