"""GEMM kernel substrate — the stand-in for Intel DNNL's JIT kernels.

* :mod:`repro.kernels.tiling` — register-tile geometry and the derived
  scheduling quantities (dependence distance, effective combination
  window).
* :mod:`repro.kernels.gemm` — µop-trace generation for register-tiled
  GEMM inner loops in the *explicit* and *embedded* broadcast patterns,
  FP32 and mixed precision, with optional write masks.
* :mod:`repro.kernels.trace` — the :class:`KernelTrace` container tying
  a trace to its functional memory image and statistics.
* :mod:`repro.kernels.stream` — the chunked :class:`TraceStream`
  contract and the restartable generator-backed stream the producers
  return (the memory-flat path the out-of-core sweeps ride on).
* :mod:`repro.kernels.conv` / :mod:`repro.kernels.lstm` — layer-shape →
  GEMM lowering for convolutions and LSTM cells.
* :mod:`repro.kernels.library` — the named kernels the paper's figures
  study (ResNet2_2, ResNet3_2, ResNet4_1a, ResNet5_1a, ...).
"""

from repro.kernels.conv import ConvShape, Phase
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_stream, generate_gemm_trace
from repro.kernels.library import (
    KERNEL_LIBRARY,
    KernelSpec,
    generate_trace,
    get_kernel,
    trace_stream,
)
from repro.kernels.lstm import LstmShape
from repro.kernels.stream import GeneratorTraceStream, TraceStream, ensure_stream
from repro.kernels.stream import stream_uops
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import DEFAULT_CHUNK, KernelTrace, TraceStats, count_uops

__all__ = [
    "BroadcastPattern",
    "ConvShape",
    "DEFAULT_CHUNK",
    "GemmKernelConfig",
    "GeneratorTraceStream",
    "KERNEL_LIBRARY",
    "KernelSpec",
    "KernelTrace",
    "LstmShape",
    "Phase",
    "Precision",
    "RegisterTile",
    "TraceStats",
    "TraceStream",
    "count_uops",
    "ensure_stream",
    "generate_gemm_stream",
    "generate_gemm_trace",
    "generate_trace",
    "get_kernel",
    "stream_uops",
    "trace_stream",
]
