"""Filesystem primitives shared by the on-disk stores.

Both :class:`repro.model.surface.SurfaceStore` and
:class:`repro.serve.store.ResultStore` are content-addressed JSON
caches that may be written by several processes at once (a parallel
sweep and a long-running service can race on the same entry).  Two
primitives make that safe:

* :func:`atomic_write_text` — write-to-temp + :func:`os.replace`, so a
  reader can never observe a torn file: it sees either the old content
  or the new content, never a partial write.
* :class:`FileLock` — an advisory, inter-process exclusive lock on a
  sidecar ``.lock`` file (``fcntl.flock`` where available, with an
  ``O_EXCL`` lockfile fallback elsewhere).  Builders take it around
  check-then-simulate-then-write so two processes never duplicate an
  expensive build or interleave writes.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Optional, Union

try:  # POSIX; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "FileLock",
    "LockTimeout",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_fingerprint",
]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text``.

    The payload lands in a same-directory temp file first (uniquified
    by PID, so concurrent writers never share one), then ``os.replace``
    publishes it in a single atomic rename.
    """
    atomic_write_bytes(path, text.encode())


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (binary payloads).

    Same temp-then-rename discipline as :func:`atomic_write_text`; used
    by the columnar sweep store for its NPZ segments.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        # Only reached with the temp file still present when the write
        # or replace itself failed.
        if tmp.exists():  # pragma: no cover - error-path cleanup
            with contextlib.suppress(OSError):
                tmp.unlink()


def canonical_fingerprint(payload: dict[str, Any]) -> str:
    """Content address of a JSON-representable payload.

    sha256 over the canonical (sorted-keys) JSON encoding, truncated to
    24 hex chars — the same scheme :mod:`repro.serve` uses for request
    fingerprints and :mod:`repro.store` uses for sweep keys, so one
    identity convention covers every on-disk store.
    """
    raw = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory inter-process exclusive lock (context manager).

    Args:
        path: the lock file (created on demand; conventionally the
            protected file's path plus ``.lock``).
        timeout: seconds to wait for the holder before raising
            :class:`LockTimeout`.
        poll_interval: seconds between acquisition attempts.

    Locks are advisory: they only exclude other ``FileLock`` users, who
    must agree on the path.  Re-entry from the same process is not
    supported (it would deadlock the lockfile fallback).
    """

    def __init__(
        self,
        path: Union[str, Path],
        timeout: float = 60.0,
        poll_interval: float = 0.01,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            return True
        try:  # pragma: no cover - non-POSIX fallback
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
            return True
        except FileExistsError:  # pragma: no cover
            return False

    def acquire(self) -> FileLock:
        if self.held:
            raise RuntimeError(f"lock {self.path} already held by this object")
        deadline = time.monotonic() + self.timeout
        while not self._try_acquire():
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.timeout}s"
                )
            time.sleep(self.poll_interval)
        return self

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            with contextlib.suppress(OSError):
                self.path.unlink()

    def __enter__(self) -> FileLock:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()
