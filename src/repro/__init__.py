"""Reproduction of *SAVE: Sparsity-Aware Vector Engine for Accelerating DNN
Training and Inference on CPUs* (Gong et al., MICRO 2020).

The package is organised bottom-up:

* :mod:`repro.isa` — an AVX-512-like vector ISA substrate (µops, registers,
  BF16/FP32 semantics, write masks) with an in-order reference executor.
* :mod:`repro.sparsity` — sparsity generators, the activation-sparsity
  progressions of Fig. 12 and the pruning schedules of Fig. 13.
* :mod:`repro.memory` — set-associative caches (LRU/SRRIP), an inclusive
  L1/L2/L3 hierarchy, a 2D-mesh NoC, a DRAM model, and SAVE's broadcast
  cache (B$) in both its *data* and *mask* variants.
* :mod:`repro.kernels` — register-tiled GEMM µop-trace generators plus
  conv→GEMM and LSTM→GEMM lowering (the DNNL-kernel stand-in).
* :mod:`repro.core` — a cycle-level out-of-order back-end (alloc, rename,
  ROB, RS, ports, VPUs, LSU) and the SAVE engine itself (ELM/MGU,
  vertical/rotate-vertical coalescing, lane-wise dependence, horizontal
  compression, the mixed-precision technique, VPU power gating).
* :mod:`repro.model` — the paper's evaluation methodology: 2D sparsity
  surfaces with bilinear interpolation, roofline memory caps, multicore
  scaling, the VGG16/ResNet-50/GNMT layer zoo and the end-to-end
  training/inference estimators.
* :mod:`repro.experiments` — one runner per table/figure of the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
