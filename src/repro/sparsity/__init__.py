"""Sparsity substrate.

Everything the evaluation needs to know about *where zeros come from*:

* :mod:`repro.sparsity.generators` — deterministic random generation of
  unstructured-sparse vectors/matrices (the paper sweeps uniform random
  sparsity on a 10%-step grid, Sec. VI).
* :mod:`repro.sparsity.stats` — sparsity measurement and lane-level
  effectuality statistics.
* :mod:`repro.sparsity.pruning` — magnitude pruning and the Zhu–Gupta
  polynomial schedules behind Fig. 13.
* :mod:`repro.sparsity.profiles` — the per-layer / per-epoch activation
  sparsity progressions behind Fig. 12 and the end-to-end evaluation.
"""

from repro.sparsity.generators import (
    sparse_matrix,
    sparse_vector,
    sparsify,
    zero_mask,
)
from repro.sparsity.pruning import (
    GNMT_PRUNING,
    RESNET50_PRUNING,
    PruningSchedule,
    magnitude_prune,
)
from repro.sparsity.profiles import (
    ActivationProfile,
    gnmt_activation_profile,
    resnet50_dense_activation_profile,
    resnet50_pruned_activation_profile,
    vgg16_activation_profile,
)
from repro.sparsity.stats import (
    effectual_lane_fraction,
    measured_sparsity,
)

__all__ = [
    "ActivationProfile",
    "GNMT_PRUNING",
    "PruningSchedule",
    "RESNET50_PRUNING",
    "effectual_lane_fraction",
    "gnmt_activation_profile",
    "magnitude_prune",
    "measured_sparsity",
    "resnet50_dense_activation_profile",
    "resnet50_pruned_activation_profile",
    "sparse_matrix",
    "sparse_vector",
    "sparsify",
    "vgg16_activation_profile",
    "zero_mask",
]
