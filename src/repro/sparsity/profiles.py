"""Per-layer, per-epoch activation-sparsity progressions (Fig. 12).

The paper obtains these curves by profiling real training runs (VGG16
from Rhu et al. [51]; ResNet-50 by profiling their own training with and
without pruning; GNMT's dropout keeps activation sparsity constant at
20%).  We do not have those training runs, so the profiles here are
parametric reconstructions that preserve the properties the evaluation
depends on (documented in DESIGN.md):

* VGG16 — high activation sparsity, rising with depth into the
  40–90% band, increasing mildly as training converges.
* ResNet-50 — markedly lower sparsity than VGG16 (residual connections
  add positive bias before ReLU); layers that consume the output of a
  residual add dip lower than layers inside a bottleneck.
* Pruned ResNet-50 — the dense profile plus a small upward shift once
  pruning starts driving pre-activations to zero.
* GNMT — constant 20% from dropout.

The first convolution of a CNN consumes the raw image and therefore has
0% input-activation sparsity in every profile (the paper separates the
"1st layer" in Fig. 14 for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.sparsity.pruning import RESNET50_PRUNING

SparsityFn = Callable[[int, float], float]


@dataclass(frozen=True)
class ActivationProfile:
    """Activation sparsity as a function of (layer, training progress).

    Args:
        name: human-readable profile name.
        n_layers: number of layers (1-indexed in :meth:`sparsity_at`).
        n_steps: number of training steps (epochs or iterations).
        fn: callable ``(layer, step) -> sparsity``.
        first_layer_dense: if True, layer 1 always reports 0% sparsity.
    """

    name: str
    n_layers: int
    n_steps: int
    fn: SparsityFn
    first_layer_dense: bool = True

    def sparsity_at(self, layer: int, step: float) -> float:
        """Input-activation sparsity of ``layer`` (1-based) at ``step``."""
        if not 1 <= layer <= self.n_layers:
            raise ValueError(f"layer must be in [1, {self.n_layers}], got {layer}")
        if not 0 <= step <= self.n_steps:
            raise ValueError(f"step must be in [0, {self.n_steps}], got {step}")
        if self.first_layer_dense and layer == 1:
            return 0.0
        value = self.fn(layer, step)
        return float(min(max(value, 0.0), 0.95))

    def table(self, step_samples: int = 0) -> np.ndarray:
        """Matrix of sparsities, shape ``(n_layers, steps)``.

        Args:
            step_samples: number of evenly spaced steps (0 = every step,
                capped at 128 samples for very long iteration counts).
        """
        if step_samples <= 0:
            step_samples = min(self.n_steps, 128)
        steps = np.linspace(0, self.n_steps, step_samples)
        return np.array(
            [
                [self.sparsity_at(layer, step) for step in steps]
                for layer in range(1, self.n_layers + 1)
            ]
        )

    def final_sparsity(self, layer: int) -> float:
        """Sparsity at the end of training (used for inference runs)."""
        return self.sparsity_at(layer, self.n_steps)


def _converge(step: float, n_steps: int, low: float, high: float) -> float:
    """Saturating ramp from ``low`` to ``high`` over training."""
    progress = min(max(step / n_steps, 0.0), 1.0)
    return low + (high - low) * np.sqrt(progress)


def vgg16_activation_profile(n_epochs: int = 90) -> ActivationProfile:
    """VGG16 profile: deep layers reach ~90%, early layers ~40-50%."""

    def fn(layer: int, step: float) -> float:
        depth = (layer - 1) / 12  # 13 conv layers, 0..1
        base = 0.42 + 0.45 * depth
        scale = _converge(step, n_epochs, 0.82, 1.0)
        return base * scale

    return ActivationProfile("dense VGG16", 13, n_epochs, fn)


def _resnet50_dense_fn(n_epochs: int) -> SparsityFn:
    def fn(layer: int, step: float) -> float:
        depth = (layer - 1) / 52  # 53 conv layers, 0..1
        base = 0.28 + 0.30 * depth
        # First conv of each bottleneck consumes a residual-add output:
        # positive bias before ReLU lowers its input sparsity.
        if (layer - 1) % 3 == 1:
            base *= 0.55
        scale = _converge(step, n_epochs, 0.85, 1.0)
        return base * scale

    return fn


def resnet50_dense_activation_profile(n_epochs: int = 90) -> ActivationProfile:
    """Dense ResNet-50: activation sparsity well below VGG16's."""
    return ActivationProfile(
        "dense ResNet-50", 53, n_epochs, _resnet50_dense_fn(n_epochs)
    )


def resnet50_pruned_activation_profile(n_epochs: int = 102) -> ActivationProfile:
    """Pruned ResNet-50: dense profile plus a pruning-driven uplift."""
    dense_fn = _resnet50_dense_fn(n_epochs)

    def fn(layer: int, step: float) -> float:
        uplift = 0.08 * (RESNET50_PRUNING.sparsity_at(step) / 0.80)
        return dense_fn(layer, step) + uplift

    return ActivationProfile("pruned ResNet-50", 53, n_epochs, fn)


def gnmt_activation_profile(n_iterations: int = 340_000) -> ActivationProfile:
    """GNMT: constant 20% activation sparsity from dropout.

    GNMT does not use ReLU; its only activation sparsity is dropout's,
    at a constant 20% rate, and it applies to every cell including the
    first (no dense first layer).
    """

    def fn(layer: int, step: float) -> float:
        return 0.20

    return ActivationProfile(
        "pruned GNMT", 8, n_iterations, fn, first_layer_dense=False
    )
