"""Deterministic generation of unstructured-sparse tensors.

The paper evaluates SAVE on a 2D grid of weight × activation sparsity
with *uniform random* zero placement (Sec. VI: "we simulate SAVE with
both weight and activation sparsities of 0%-90% at 10% intervals, using
a uniform random distribution").  These helpers produce exactly that
kind of data, deterministically from a seed so experiments are
repeatable.

Non-zero values are drawn away from zero (magnitude in ``[0.25, 2)``)
so that "zero" and "non-zero" are unambiguous after FP32/BF16 rounding.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zero_mask(shape: tuple[int, ...], sparsity: float, rng: RngLike = None) -> np.ndarray:
    """Return a boolean array where True marks a zeroed element.

    Args:
        shape: output shape.
        sparsity: fraction of elements to zero, in ``[0, 1]``.
        rng: seed or ``numpy.random.Generator``.

    Exactly ``round(sparsity * size)`` elements are zeroed, placed
    uniformly at random — the exact-count variant keeps the measured
    sparsity on-grid even for small tensors.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    generator = _as_rng(rng)
    size = int(np.prod(shape))
    n_zero = int(round(sparsity * size))
    mask = np.zeros(size, dtype=bool)
    if n_zero:
        mask[generator.choice(size, size=n_zero, replace=False)] = True
    return mask.reshape(shape)


def sparse_vector(n: int, sparsity: float, rng: RngLike = None) -> np.ndarray:
    """Return an FP32 vector with the given fraction of exact zeros."""
    return sparse_matrix((n,), sparsity, rng).reshape(n)


def sparse_matrix(
    shape: tuple[int, ...], sparsity: float, rng: RngLike = None
) -> np.ndarray:
    """Return an FP32 tensor with the given fraction of exact zeros.

    Non-zero magnitudes are uniform in ``[0.25, 2)`` with random sign,
    guaranteeing they stay non-zero under BF16 rounding.
    """
    generator = _as_rng(rng)
    values = generator.uniform(0.25, 2.0, size=shape).astype(np.float32)
    signs = generator.choice(np.array([-1.0, 1.0], dtype=np.float32), size=shape)
    values = values * signs
    values[zero_mask(shape, sparsity, generator)] = 0.0
    return values


def sparsify(values: np.ndarray, sparsity: float, rng: RngLike = None) -> np.ndarray:
    """Zero a uniformly-random fraction of ``values`` (returns a copy)."""
    out = np.array(values, dtype=np.float32, copy=True)
    out[zero_mask(out.shape, sparsity, rng)] = 0.0
    return out
