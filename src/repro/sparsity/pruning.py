"""Weight pruning: magnitude pruning and gradual pruning schedules.

Reproduces Fig. 13 of the paper.  The paper prunes with "a magnitude
based method [69] with the hyperparameters from [17]" — reference [69]
is Zhu & Gupta, *To Prune, or Not to Prune* (2017), whose schedule
raises sparsity along a cubic polynomial:

    s(t) = s_f * (1 - (1 - (t - t0) / (t1 - t0))^3)   for t in [t0, t1]

with s(t) = 0 before t0 and s(t) = s_f after t1.

Paper schedules (Sec. VI):

* ResNet-50 — start pruning at epoch 32, reach 80% at epoch 60,
  train to epoch 102 (yields 75.4% top-1 vs 76.7% dense).
* GNMT — start at iteration 40K, reach 90% at iteration 190K, train to
  340K (final BLEU 28.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PruningSchedule:
    """A Zhu–Gupta cubic gradual-pruning schedule.

    Args:
        start_step: step (epoch or iteration) where pruning begins.
        end_step: step where the target sparsity is reached.
        target_sparsity: final weight sparsity in ``[0, 1]``.
        total_steps: length of the whole training run.
        step_name: unit label for reports ("epoch" or "iteration").
    """

    start_step: int
    end_step: int
    target_sparsity: float
    total_steps: int
    step_name: str = "epoch"

    def __post_init__(self) -> None:
        if not 0 <= self.start_step < self.end_step <= self.total_steps:
            raise ValueError("require 0 <= start < end <= total")
        if not 0.0 <= self.target_sparsity <= 1.0:
            raise ValueError("target sparsity must be in [0, 1]")

    def sparsity_at(self, step: float) -> float:
        """Weight sparsity at the given training step."""
        if step <= self.start_step:
            return 0.0
        if step >= self.end_step:
            return self.target_sparsity
        progress = (step - self.start_step) / (self.end_step - self.start_step)
        return self.target_sparsity * (1.0 - (1.0 - progress) ** 3)

    def curve(self, points: int = 0) -> np.ndarray:
        """Sparsity sampled at every step (or ``points`` even samples)."""
        if points <= 0:
            steps = np.arange(self.total_steps + 1, dtype=float)
        else:
            steps = np.linspace(0, self.total_steps, points)
        return np.array([self.sparsity_at(s) for s in steps])


#: ResNet-50 pruning schedule used throughout the paper's evaluation.
RESNET50_PRUNING = PruningSchedule(
    start_step=32, end_step=60, target_sparsity=0.80, total_steps=102, step_name="epoch"
)

#: GNMT pruning schedule used throughout the paper's evaluation.
GNMT_PRUNING = PruningSchedule(
    start_step=40_000,
    end_step=190_000,
    target_sparsity=0.90,
    total_steps=340_000,
    step_name="iteration",
)


def magnitude_prune(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero the smallest-magnitude fraction of ``weights`` (returns a copy).

    Ties are broken by index, matching the deterministic behaviour of a
    threshold pruner.  The pruned tensor stays in *dense* form — the
    paper notes pruned networks "are often in dense form during
    training, and masks are used for identifying dropped weights".
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    out = np.array(weights, dtype=np.float32, copy=True)
    n_prune = int(round(sparsity * out.size))
    if n_prune == 0:
        return out
    flat = out.reshape(-1)
    order = np.argsort(np.abs(flat), kind="stable")
    flat[order[:n_prune]] = 0.0
    return out


def pruning_write_mask(weights: np.ndarray) -> np.ndarray:
    """Boolean mask marking surviving (non-pruned) weights.

    This is what a training framework materialises into AVX-512 write
    masks for predicated VFMAs over pruned weights (Sec. II-B / III).
    """
    return np.asarray(weights) != 0
