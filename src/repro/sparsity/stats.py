"""Sparsity measurement and lane-level effectuality statistics.

These helpers connect tensor-level sparsity to the lane-level quantities
SAVE's scheduler sees: a VFMA lane is *effectual* iff both multiplicand
elements are non-zero and the write-mask bit is set (Sec. III).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def measured_sparsity(values: np.ndarray) -> float:
    """Fraction of exactly-zero elements in ``values``."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot measure sparsity of an empty array")
    return float(np.count_nonzero(arr == 0) / arr.size)


def effectual_lane_fraction(
    a: np.ndarray, b: np.ndarray, write_mask: Optional[np.ndarray] = None
) -> float:
    """Fraction of lanes where both multiplicands are non-zero.

    Args:
        a, b: multiplicand arrays of identical shape.
        write_mask: optional boolean predication mask (True = enabled).

    This is the density of the Effectual Lane Mask an MGU would produce.
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if a_arr.shape != b_arr.shape:
        raise ValueError("multiplicand shapes differ")
    effectual = (a_arr != 0) & (b_arr != 0)
    if write_mask is not None:
        effectual &= np.asarray(write_mask, dtype=bool)
    return float(np.count_nonzero(effectual) / effectual.size)


def expected_effectual_fraction(sparsity_a: float, sparsity_b: float) -> float:
    """Expected effectual-lane density for independent uniform sparsity.

    With independent zero placement the probability that a lane is
    effectual is ``(1 - s_a) * (1 - s_b)``.
    """
    return (1.0 - sparsity_a) * (1.0 - sparsity_b)


def accumulator_lane_skip_probability(ml_effectual_density: float) -> float:
    """Probability a mixed-precision *accumulator* lane can be skipped.

    An FP32 accumulator lane of a VDPBF16 is ineffectual only when both
    of its BF16 multiplicand lanes are ineffectual (Sec. V) — so with
    independent per-ML effectuality ``d`` the skip probability is
    ``(1 - d)^2``.  This quantifies the paper's observation that plain
    vertical coalescing only exploits the *square* of the sparsity.
    """
    if not 0.0 <= ml_effectual_density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    return (1.0 - ml_effectual_density) ** 2
