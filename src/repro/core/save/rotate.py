"""Rotational states for rotate-vertical coalescing (Sec. IV-B).

Each VFMA gets one of three R-states — rotate left one lane, none, or
rotate right one lane — determined by ``accumulator_register % 3``.
Keying on the accumulator's *logical* register number guarantees that a
VFMA producing an accumulator and the VFMA consuming it share an
R-state, so lane chains stay aligned and a single accumulator copy
suffices (the paper's second register-saving optimisation).

Rotation is purely a *placement* transform: lane ``l`` of the µop still
computes with lane ``l``'s data, it merely occupies temp slot
``(l + offset) mod V`` — so correctness is untouched while lane
conflicts between µops that reuse a non-broadcasted register break up.
"""

from __future__ import annotations

#: Offset per R-state: state 0 → none, 1 → right (+1), 2 → left (-1).
_STATE_OFFSETS = {0: 0, 1: 1, 2: -1}

#: Human-readable R-state names, keyed by lane offset (trace events).
ROTATION_STATE_NAMES = {0: "none", 1: "right", -1: "left"}


def rotation_state_name(offset: int) -> str:
    """Trace-event label for a rotation offset (``rotation_offset``)."""
    return ROTATION_STATE_NAMES[offset]


def rotation_offset(accumulator_reg: int, rotation_states: int = 3) -> int:
    """Lane offset for a µop accumulating into ``accumulator_reg``.

    Args:
        accumulator_reg: logical accumulator register number.
        rotation_states: 3 enables the paper's scheme, 1 disables
            rotation (plain vertical coalescing).
    """
    if rotation_states == 1:
        return 0
    if rotation_states != 3:
        raise ValueError("rotation_states must be 1 or 3")
    return _STATE_OFFSETS[accumulator_reg % 3]


def slot_for_lane(lane: int, offset: int, lanes: int = 16) -> int:
    """Temp slot occupied by ``lane`` under a rotation ``offset``."""
    return (lane + offset) % lanes
