"""The SAVE engine: ELM generation, lane coalescing and scheduling.

* :mod:`repro.core.save.elm` — Mask Generation Units producing
  Effectual Lane Masks (Sec. III, Fig. 4).
* :mod:`repro.core.save.rotate` — rotational states for rotate-vertical
  coalescing (Sec. IV-B, Fig. 7).
* :mod:`repro.core.save.window` — the combination-window scheduling
  structures: per-slot queues for (rotate-)vertical coalescing, the
  global queue for horizontal compression, and the baseline
  whole-instruction queue.
* :mod:`repro.core.save.mixed` — accumulator-chain ML compression for
  mixed precision (Sec. V, Figs. 10-11).
* :mod:`repro.core.save.power` — VPU-count/frequency selection
  (Sec. IV-D).
"""

from repro.core.save.elm import MguStage, compute_elm
from repro.core.save.rotate import rotation_offset, slot_for_lane
from repro.core.save.window import (
    BaselineScheduler,
    HorizontalScheduler,
    SlotScheduler,
)
from repro.core.save.mixed import ChainLane, ChainManager
from repro.core.save.power import VpuPolicy, best_configuration

__all__ = [
    "BaselineScheduler",
    "ChainLane",
    "ChainManager",
    "HorizontalScheduler",
    "MguStage",
    "SlotScheduler",
    "VpuPolicy",
    "best_configuration",
    "compute_elm",
    "rotation_offset",
    "slot_for_lane",
]
