"""VPU power gating and frequency boosting (Sec. IV-D).

At high sparsity there are too few effectual lanes to keep both VPUs
busy, so SAVE can disable one VPU and let the power manager raise the
core clock (the modeled machine: two 512-bit VPUs at 1.7 GHz, or one at
2.1 GHz — the AVX-512 vs AVX2 licence frequencies of the Xeon 8180).

The *static* policy picks a VPU count per training epoch; the *dynamic*
policy picks per kernel.  Both are evaluated by running each candidate
configuration and taking the faster one — matching the paper's
methodology, which neglects switching overhead because DVFS transitions
(~10 µs) are far shorter than the tens-of-milliseconds switching
intervals.
"""

from __future__ import annotations

from enum import Enum


class VpuPolicy(Enum):
    """VPU-count selection policies of Fig. 14."""

    BASELINE = "baseline"
    TWO_VPUS = "2 VPUs"
    ONE_VPU = "1 VPU"
    STATIC = "static"  # per-epoch best (training only)
    DYNAMIC = "dynamic"  # per-kernel best


def best_configuration(times_ns: dict[str, float]) -> tuple[str, float]:
    """Pick the fastest of the candidate configurations.

    Args:
        times_ns: configuration label → execution time.

    Returns:
        ``(label, time)`` of the minimum (ties break towards two VPUs
        first in insertion order, matching a preference for the default).
    """
    if not times_ns:
        raise ValueError("no candidate configurations")
    best_label = min(times_ns, key=times_ns.get)
    return best_label, times_ns[best_label]
