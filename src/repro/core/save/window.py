"""Combination-window scheduling structures.

The combination window is the set of ready VFMAs in the reservation
stations (Sec. III).  Three schedulers model the paper's design points:

* :class:`SlotScheduler` — (rotate-)vertical coalescing: one priority
  queue per temp *slot*; entries are ``(seq, item)`` so selection is
  oldest-(program-order)-first, matching conventional select logic.
* :class:`HorizontalScheduler` — 16-lane horizontal compression: one
  global priority queue; a VPU op takes the oldest 16 pending lanes.
* :class:`BaselineScheduler` — no SAVE: whole instructions issue.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional


class SlotScheduler:
    """Per-slot ready queues for vertical coalescing.

    Items are opaque to the scheduler; callers push ``(seq, item)``
    into a slot and pop the oldest per slot.
    """

    def __init__(self, slots: int = 16) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.slots = slots
        self._heaps: list[list[tuple[int, int, Any]]] = [[] for _ in range(slots)]
        self._tiebreak = 0
        self._pending = 0
        #: Peak total queue depth over the run (observability).
        self.peak_pending = 0

    def insert(self, slot: int, seq: int, item: Any) -> None:
        """Queue ``item`` (priority = program order ``seq``) at ``slot``."""
        self._tiebreak += 1
        self._pending += 1
        if self._pending > self.peak_pending:
            self.peak_pending = self._pending
        heapq.heappush(self._heaps[slot], (seq, self._tiebreak, item))

    def pop_oldest(self, slot: int) -> Optional[Any]:
        """Remove and return the oldest pending item at ``slot``."""
        heap = self._heaps[slot]
        if not heap:
            return None
        self._pending -= 1
        return heapq.heappop(heap)[2]

    def pending(self) -> int:
        """Total queued items across all slots (O(1))."""
        return self._pending

    def slot_occupancy(self) -> list[int]:
        """Queued items per slot (lane-imbalance diagnostics)."""
        return [len(heap) for heap in self._heaps]


class HorizontalScheduler:
    """Single global ready queue for 16-lane horizontal compression."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any]] = []
        self._tiebreak = 0
        #: Peak queue depth over the run (observability).
        self.peak_pending = 0

    def insert(self, seq: int, item: Any) -> None:
        self._tiebreak += 1
        heapq.heappush(self._heap, (seq, self._tiebreak, item))
        if len(self._heap) > self.peak_pending:
            self.peak_pending = len(self._heap)

    def pop_oldest(self) -> Optional[Any]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def pending(self) -> int:
        return len(self._heap)


class BaselineScheduler:
    """Whole-instruction ready queue (the non-SAVE machine)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[int, Any]] = []

    def insert(self, seq: int, item: Any) -> None:
        heapq.heappush(self._heap, (seq, item))

    def pop_oldest(self) -> Optional[Any]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[1]

    def pending(self) -> int:
        return len(self._heap)
