"""Mixed-precision accumulator-chain compression (Sec. V).

For VDPBF16-style µops, two BF16 multiplicand lanes (MLs) map to one
FP32 accumulator lane (AL).  Plain vertical coalescing can only skip an
AL when *both* its MLs are ineffectual, exploiting just the square of
the sparsity.  SAVE instead horizontally compresses effectual MLs from
VFMAs *sharing an accumulator*: each VPU AL slot processes up to two
MLs drawn in program order from the accumulator chain, preserving the
accumulation order (Fig. 10b) and therefore FP determinism.

:class:`ChainLane` tracks one (accumulator chain, AL lane) pair: the
FIFO of pending effectual MLs, the forwarded partial accumulator value,
and the busy state that serialises chain ops (the partial result of one
VPU op is forwarded as the accumulation base of the next, Fig. 11).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.core.dynuop import DynUop

#: One pending multiplicand-lane: (owning µop, ML index within the AL).
MlRef = tuple[DynUop, int]


class ChainLane:
    """Pending-ML queue and forwarding state for one (chain, lane)."""

    def __init__(self, root: DynUop, lane: int, slot: int) -> None:
        self.root = root
        self.lane = lane
        self.slot = slot
        self.queue: deque[MlRef] = deque()
        #: Forwarded partial accumulator; None until the chain's initial
        #: accumulator value is available.
        self.acc_value: Optional[np.float32] = None
        self.busy = False
        #: True while the chain lane sits in a scheduler queue.
        self.enqueued = False

    def append(self, dyn: DynUop, ml_index: int) -> None:
        """Append one effectual ML (must be called in program order)."""
        self.queue.append((dyn, ml_index))

    def ready(self) -> bool:
        """Can a VPU op be issued for this chain lane this cycle?"""
        return bool(self.queue) and not self.busy and self.acc_value is not None

    def head_seq(self) -> int:
        """Program-order priority of the oldest pending ML."""
        return self.queue[0][0].seq

    def take(self, max_mls: int = 2) -> list[MlRef]:
        """Dequeue up to ``max_mls`` MLs for one VPU AL slot."""
        taken: list[MlRef] = []
        while self.queue and len(taken) < max_mls:
            taken.append(self.queue.popleft())
        return taken


class ChainManager:
    """All live accumulator chains of a mixed-precision kernel."""

    def __init__(self) -> None:
        self._chains: dict[tuple[int, int], ChainLane] = {}
        #: Chain-lane records ever created (observability).
        self.created = 0
        #: Effectual MLs appended across all chain lanes (observability).
        self.mls_appended = 0

    @staticmethod
    def chain_root(dyn: DynUop) -> DynUop:
        """The first µop of the accumulator chain containing ``dyn``.

        A chain extends through consecutive mixed FMAs linked by their
        accumulator source; it starts at a µop whose accumulator comes
        from a non-FMA producer (or the initial register value).
        """
        root = dyn
        while (
            root.acc_src is not None
            and root.acc_src.is_fma
            and root.acc_src.mixed
        ):
            root = root.acc_src
        return root

    def lane(self, root: DynUop, lane: int, slot: int) -> ChainLane:
        """Get or create the chain-lane record."""
        key = (root.seq, lane)
        chain = self._chains.get(key)
        if chain is None:
            chain = ChainLane(root, lane, slot)
            self._chains[key] = chain
            self.created += 1
        return chain

    def existing_lane(self, root: DynUop, lane: int) -> Optional[ChainLane]:
        """Look up a chain-lane without creating it."""
        return self._chains.get((root.seq, lane))

    def all_lanes(self) -> list[ChainLane]:
        """All chain lanes (diagnostics/tests)."""
        return list(self._chains.values())
