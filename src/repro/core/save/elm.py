"""Effectual Lane Mask generation (Sec. III, Fig. 4).

A VFMA's lane is effectual iff both multiplicand elements are non-zero
and the write-mask bit (if any) is set.  For mixed-precision VFMAs the
mask is per *accumulator lane*: an AL is effectual iff at least one of
its two multiplicand-lane pairs is effectual (Sec. V).

MGUs are simple and replicated to match the issue width, so their
throughput is never the bottleneck — but we model the per-cycle budget
anyway so the claim is checkable (and ablatable).
"""

from __future__ import annotations

from collections import deque
from typing import Optional


from repro.core.dynuop import DynUop
from repro.isa.datatypes import FP32_LANES


def compute_elm(dyn: DynUop) -> tuple[int, Optional[list[tuple[int, ...]]]]:
    """Compute the ELM (and per-AL effectual-ML lists for mixed).

    Requires the µop's multiplicands and write mask to be resolved.

    Returns:
        ``(elm_bits, ml_effectual)`` where ``elm_bits`` has one bit per
        accumulator lane and ``ml_effectual`` (mixed only) lists, per
        accumulator lane, the effectual multiplicand-lane indices
        (subset of ``(0, 1)``) — empty for write-masked lanes.
    """
    if not dyn.multiplicands_ready():
        raise RuntimeError("ELM requested before multiplicands resolved")
    a = dyn.a_value
    b = dyn.b_value
    wm = dyn.write_mask()
    elm = 0
    if not dyn.mixed:
        for lane in range(FP32_LANES):
            if wm & (1 << lane) and a[lane] != 0 and b[lane] != 0:
                elm |= 1 << lane
        return elm, None

    ml_effectual: list[tuple[int, ...]] = []
    for lane in range(FP32_LANES):
        if not wm & (1 << lane):
            ml_effectual.append(())
            continue
        effectual = tuple(
            p for p in (0, 1) if a[2 * lane + p] != 0 and b[2 * lane + p] != 0
        )
        ml_effectual.append(effectual)
        if effectual:
            elm |= 1 << lane
    return elm, ml_effectual


class MguStage:
    """FIFO of VFMAs awaiting ELM generation, with a per-cycle budget."""

    def __init__(self, mgus_per_cycle: int) -> None:
        if mgus_per_cycle <= 0:
            raise ValueError("mgus_per_cycle must be positive")
        self.mgus_per_cycle = mgus_per_cycle
        self._queue: deque[DynUop] = deque()
        self.processed = 0
        #: Peak backlog of VFMAs awaiting ELM generation (observability
        #: check of the paper's "MGUs are never the bottleneck" claim).
        self.peak_queue = 0

    def enqueue(self, dyn: DynUop) -> None:
        """Queue a VFMA whose multiplicands just became ready."""
        self._queue.append(dyn)
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)

    def step(self) -> list[DynUop]:
        """Process up to the per-cycle budget; returns activated µops."""
        activated: list[DynUop] = []
        for _ in range(min(self.mgus_per_cycle, len(self._queue))):
            dyn = self._queue.popleft()
            dyn.elm, dyn.ml_effectual = compute_elm(dyn)
            self.processed += 1
            activated.append(dyn)
        return activated

    def __len__(self) -> int:
        return len(self._queue)
