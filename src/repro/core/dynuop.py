"""Dynamic µop state for the out-of-order pipeline.

A :class:`DynUop` wraps one trace µop with everything the pipeline
tracks at run time: renamed source producers, resolved operand values,
the Effectual Lane Mask, per-lane completion, and consumer links for
wake-up.  Values are carried so the pipeline *functionally executes*
the trace in its own (SAVE-reordered) schedule — which is what the
software-transparency property tests compare against the in-order
reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.uops import Uop, UopKind

#: Consumer roles for wake-up routing.
ROLE_A = "a"
ROLE_B = "b"
ROLE_ACC = "acc"
ROLE_MASK = "mask"
ROLE_STORE = "store"


class DynUop:
    """One in-flight µop."""

    __slots__ = (
        "uop",
        "seq",
        "is_fma",
        "mixed",
        "lanes",
        # Source producers (DynUop) or immediate values.
        "acc_src",
        "acc_init",
        "a_src",
        "a_value",
        "b_src",
        "b_value",
        "mask_src",
        "mask_bits",
        "mem_request",
        # SAVE state.
        "elm",
        "ml_effectual",
        "ml_remaining",
        "rotation",
        "active",
        "appended",
        "mgu_queued",
        "baseline_queued",
        "chain_root",
        "queued_lanes",
        "in_cw",
        # Per-lane progress.
        "out",
        "lanes_done_mask",
        "lanes_dispatched_mask",
        "full_mask",
        # Bookkeeping.
        "consumers",
        "completed",
        "retired",
        "rs_freed",
        "alloc_cycle",
        "activate_cycle",
        "complete_cycle",
    )

    def __init__(self, uop: Uop, seq: int, lanes: int = 16) -> None:
        self.uop = uop
        self.seq = seq
        self.is_fma = uop.is_fma()
        self.mixed = uop.kind == UopKind.VDPBF16
        self.lanes = lanes

        self.acc_src: Optional["DynUop"] = None
        self.acc_init: Optional[np.ndarray] = None
        self.a_src: Optional["DynUop"] = None
        self.a_value: Optional[np.ndarray] = None
        self.b_src: Optional["DynUop"] = None
        self.b_value: Optional[np.ndarray] = None
        self.mask_src: Optional["DynUop"] = None
        self.mask_bits: Optional[int] = None
        self.mem_request = None

        self.elm: Optional[int] = None
        #: Per accumulator lane, tuple of effectual ML indices (mixed).
        self.ml_effectual: Optional[list[tuple[int, ...]]] = None
        #: Per accumulator lane, count of not-yet-processed MLs (mixed
        #: technique bookkeeping).
        self.ml_remaining: Optional[list[int]] = None
        self.rotation = 0
        self.active = False  # operands + ELM ready, participates in CW
        self.appended = False  # mixed technique: MLs appended to chain
        self.mgu_queued = False
        self.baseline_queued = False
        self.chain_root: Optional["DynUop"] = None
        #: Effectual lanes currently sitting in scheduler queues
        #: (combination-window gauge bookkeeping).
        self.queued_lanes = 0
        self.in_cw = False

        self.out: Optional[np.ndarray] = None
        self.lanes_done_mask = 0
        self.lanes_dispatched_mask = 0
        self.full_mask = (1 << lanes) - 1

        self.consumers: list[tuple["DynUop", str]] = []
        self.completed = False
        self.retired = False
        self.rs_freed = False
        self.alloc_cycle = -1
        #: Cycle the ELM became ready (µop entered the CW); -1 if never.
        self.activate_cycle = -1
        self.complete_cycle = -1

    # ------------------------------------------------------------------
    # Operand readiness
    # ------------------------------------------------------------------

    def multiplicands_ready(self) -> bool:
        """A, B and write mask resolved (prerequisite for the MGU)."""
        return (
            self.a_value is not None
            and self.b_value is not None
            and (self.uop.wmask is None or self.mask_bits is not None)
        )

    def acc_lane_available(self, lane: int) -> bool:
        """Is the accumulator input for ``lane`` available?"""
        if self.acc_src is None:
            return True
        return bool(self.acc_src.lanes_done_mask & (1 << lane))

    def acc_fully_available(self) -> bool:
        """Vector-wise accumulator availability."""
        return self.acc_src is None or self.acc_src.completed

    def acc_lane_value(self, lane: int) -> np.float32:
        """Accumulator input value for ``lane`` (must be available)."""
        if self.acc_src is None:
            return np.float32(self.acc_init[lane])
        return np.float32(self.acc_src.out[lane])

    # ------------------------------------------------------------------
    # Lane progress
    # ------------------------------------------------------------------

    def lane_done(self, lane: int) -> bool:
        return bool(self.lanes_done_mask & (1 << lane))

    def mark_lane_dispatched(self, lane: int) -> None:
        self.lanes_dispatched_mask |= 1 << lane

    def all_lanes_dispatched(self) -> bool:
        return self.lanes_dispatched_mask == self.full_mask

    def mark_lane_done(self, lane: int, value: np.float32) -> bool:
        """Record a lane result; returns True if the µop just completed."""
        if self.out is None:
            self.out = np.zeros(self.lanes, dtype=np.float32)
        self.out[lane] = value
        self.lanes_done_mask |= 1 << lane
        if self.lanes_done_mask == self.full_mask and not self.completed:
            self.completed = True
            return True
        return False

    def set_output(self, value: np.ndarray) -> None:
        """Whole-vector completion (loads, baseline FMAs, ...)."""
        self.out = np.asarray(value, dtype=np.float32).copy()
        self.lanes_done_mask = self.full_mask
        self.lanes_dispatched_mask = self.full_mask
        self.completed = True

    def write_mask(self) -> int:
        """Effective write mask bits (all-ones when unmasked)."""
        if self.uop.wmask is None:
            return self.full_mask
        return self.mask_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynUop #{self.seq} {self.uop.kind.name} done={self.completed}>"
