"""VPU operations: temp assembly records and result computation.

A :class:`TempOp` is one issued VPU operation — either a whole VFMA
(baseline), a set of coalesced ``(µop, lane)`` entries (SAVE vertical /
rotate-vertical / horizontal), or a mixed-precision chain op processing
up to two MLs per accumulator-lane slot.

Result computation uses the same :func:`repro.isa.semantics.mac`
primitive as the reference executor, so SAVE schedules that preserve
per-lane program order produce bit-identical architectural results.
"""

from __future__ import annotations

from enum import Enum, auto

import numpy as np

from repro.core.dynuop import DynUop
from repro.core.save.mixed import ChainLane, MlRef
from repro.isa.datatypes import FP32_LANES
from repro.isa.semantics import mac


class TempOpKind(Enum):
    """What an issued VPU operation carries."""

    WHOLE = auto()  # baseline: one complete VFMA
    LANES = auto()  # coalesced single lanes from multiple VFMAs
    CHAIN = auto()  # mixed-precision chain slots (ML pairs)


class TempOp:
    """One VPU operation in flight.

    A plain ``__slots__`` class (not a dataclass): the scheduler builds
    one per VPU per busy cycle, so construction cost is hot-loop cost.
    """

    __slots__ = ("kind", "issue_cycle", "latency", "whole", "lane_entries",
                 "chain_entries")

    def __init__(
        self,
        kind: TempOpKind,
        issue_cycle: int,
        latency: int,
        whole: DynUop = None,
    ) -> None:
        self.kind = kind
        self.issue_cycle = issue_cycle
        self.latency = latency
        #: WHOLE: the µop.
        self.whole = whole
        #: LANES: (µop, lane) pairs.
        self.lane_entries: list[tuple[DynUop, int]] = []
        #: CHAIN: (chain lane, MLs taken, acc base at issue) triples.
        self.chain_entries: list[tuple[ChainLane, list[MlRef], np.float32]] = []

    @property
    def complete_cycle(self) -> int:
        return self.issue_cycle + self.latency

    def is_empty(self) -> bool:
        """True if nothing was assembled into this op."""
        if self.kind == TempOpKind.WHOLE:
            return self.whole is None
        if self.kind == TempOpKind.LANES:
            return not self.lane_entries
        return not self.chain_entries

    def lane_count(self) -> int:
        """Occupied temp slots (VPU lane utilisation accounting)."""
        if self.kind == TempOpKind.WHOLE:
            return FP32_LANES
        if self.kind == TempOpKind.LANES:
            return len(self.lane_entries)
        return len(self.chain_entries)

    def uop_count(self) -> int:
        """Distinct µops contributing to this op (coalescing degree)."""
        if self.kind == TempOpKind.WHOLE:
            return 1
        if self.kind == TempOpKind.LANES:
            return len({dyn.seq for dyn, _lane in self.lane_entries})
        return len(
            {dyn.seq for _chain, mls, _acc in self.chain_entries for dyn, _p in mls}
        )

    def describe(self) -> dict:
        """Flat summary for ``issue`` trace events."""
        return {
            "kind": self.kind.name.lower(),
            "lanes": self.lane_count(),
            "uops": self.uop_count(),
            "latency": self.latency,
        }


def compute_whole(dyn: DynUop) -> np.ndarray:
    """Architectural result of a whole VFMA (baseline issue)."""
    wm = dyn.write_mask()
    out = np.zeros(FP32_LANES, dtype=np.float32)
    for lane in range(FP32_LANES):
        acc = dyn.acc_lane_value(lane)
        if not wm & (1 << lane):
            out[lane] = acc
            continue
        if dyn.mixed:
            value = acc
            value = mac(value, dyn.a_value[2 * lane], dyn.b_value[2 * lane])
            value = mac(value, dyn.a_value[2 * lane + 1], dyn.b_value[2 * lane + 1])
            out[lane] = value
        else:
            out[lane] = mac(acc, dyn.a_value[lane], dyn.b_value[lane])
    return out


def compute_lane(dyn: DynUop, lane: int) -> np.float32:
    """Architectural result of one coalesced effectual lane.

    FP32: a single MAC.  Mixed without the MP technique: the µop's own
    effectual MLs, chained in order — skipping ineffectual MLs is exact
    because their product is a true zero.
    """
    acc = dyn.acc_lane_value(lane)
    if not dyn.mixed:
        return mac(acc, dyn.a_value[lane], dyn.b_value[lane])
    value = acc
    for p in dyn.ml_effectual[lane]:
        value = mac(value, dyn.a_value[2 * lane + p], dyn.b_value[2 * lane + p])
    return value


def compute_chain_slot(
    mls: list[MlRef], lane: int, acc_base: np.float32
) -> tuple[np.float32, list[tuple[DynUop, int, np.float32]]]:
    """Process up to two MLs of one chain slot (Fig. 11 semantics).

    Args:
        mls: ``(µop, p)`` pairs where ``p`` selects the ML within the
            accumulator lane, in program order.
        lane: the accumulator lane this chain slot belongs to.
        acc_base: accumulation base (forwarded partial or chain start).

    Returns the final partial value (forwarded to the next chain op)
    and, per ML, the partial value *after* that ML — the value written
    back if the ML is its instruction's last (Sec. V-B).
    """
    value = np.float32(acc_base)
    partials: list[tuple[DynUop, int, np.float32]] = []
    for dyn, p in mls:
        value = mac(value, dyn.a_value[2 * lane + p], dyn.b_value[2 * lane + p])
        partials.append((dyn, p, value))
    return value, partials
