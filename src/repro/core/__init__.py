"""Cycle-level out-of-order core model with the SAVE vector engine.

The pipeline (:mod:`repro.core.pipeline`) consumes the same µop traces
as the reference executor and produces both *timing* (cycles, VPU ops,
stall breakdown) and *architectural state* — so SAVE's software
transparency is checked bit-for-bit by the test suite.

Configurations (:mod:`repro.core.config`) mirror Table I:
5-wide allocation, 97 RS entries, 224 ROB entries, and either two
512-bit VPUs at 1.7 GHz or one at 2.1 GHz.
"""

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_1VPU,
    SAVE_2VPU,
    CoalescingScheme,
    CoreConfig,
    MachineConfig,
    SaveConfig,
)
from repro.core.diagnostics import BottleneckReport, analyze, explain
from repro.core.pipeline import PipelineSimulator, SimResult, simulate

__all__ = [
    "BASELINE_2VPU",
    "BottleneckReport",
    "CoalescingScheme",
    "CoreConfig",
    "MachineConfig",
    "PipelineSimulator",
    "SAVE_1VPU",
    "SAVE_2VPU",
    "SaveConfig",
    "SimResult",
    "analyze",
    "explain",
    "simulate",
]
