"""Run diagnostics: bottleneck attribution for simulation results.

Answers "why is this kernel this fast?" from a :class:`SimResult` —
the same reasoning the paper applies when explaining speedup caps
("the execution becomes memory, frontend, or latency bound, depending
on the kernel", Sec. VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import MachineConfig
from repro.core.pipeline import SimResult
from repro.obs.metrics import hist_stats


@dataclass(frozen=True)
class BottleneckReport:
    """Utilisation of each throughput-limited resource over a run."""

    vpu_utilisation: float
    frontend_utilisation: float
    l1_port_utilisation: float
    lane_utilisation: float
    mean_cw: float

    @property
    def binding(self) -> str:
        """The most-utilised resource (the likely bottleneck)."""
        candidates = {
            "vpu": self.vpu_utilisation,
            "frontend": self.frontend_utilisation,
            "l1_ports": self.l1_port_utilisation,
        }
        return max(candidates, key=candidates.get)


def analyze(result: SimResult, machine: MachineConfig) -> BottleneckReport:
    """Attribute a run's performance to its resource utilisations."""
    core = machine.core
    cycles = max(result.cycles, 1)
    return BottleneckReport(
        vpu_utilisation=result.vpu_ops / (cycles * core.num_vpus),
        frontend_utilisation=result.uop_count / (cycles * core.issue_width),
        l1_port_utilisation=result.l1_port_accesses
        / (cycles * machine.hierarchy.l1_read_ports),
        lane_utilisation=result.lane_utilisation,
        mean_cw=result.mean_cw,
    )


def explain(result: SimResult, machine: MachineConfig) -> str:
    """Human-readable diagnosis of one run."""
    report = analyze(result, machine)
    lines = [
        f"kernel {result.name}: {result.cycles} cycles at "
        f"{machine.core.freq_ghz} GHz ({result.time_ns:.0f} ns)",
        f"  VFMAs retired : {result.fma_count} "
        f"({result.skipped_fmas} fully skipped)",
        f"  VPU ops issued: {result.vpu_ops} "
        f"({report.lane_utilisation:.0%} of temp slots filled)",
        f"  utilisation   : VPU {report.vpu_utilisation:.0%}, "
        f"front-end {report.frontend_utilisation:.0%}, "
        f"L1 ports {report.l1_port_utilisation:.0%}",
        f"  binding       : {report.binding}",
    ]
    if result.mean_cw:
        lines.append(f"  mean CW size  : {result.mean_cw:.1f} VFMAs")
    if result.b_cache_hit_rate:
        lines.append(
            f"  B$ hit rate   : {result.b_cache_hit_rate:.1%} "
            f"({result.b_cache_reads_saved} L1 reads saved)"
        )
    if result.stall_rob_cycles or result.stall_rs_cycles:
        lines.append(
            f"  alloc stalls  : ROB {result.stall_rob_cycles}, "
            f"RS {result.stall_rs_cycles} cycles"
        )
    if result.metrics:
        lines.extend(_distribution_lines(result.metrics))
    return "\n".join(lines)


#: Histograms worth surfacing in ``explain``, with display labels.
_EXPLAIN_HISTOGRAMS = (
    ("CW occupancy", "cw_occupancy"),
    ("lanes per op", "lanes_per_op"),
    ("ELM wait", "elm_wait_cycles"),
    ("CW residency", "cw_residency_cycles"),
    ("retire wait", "retire_wait_cycles"),
)


def _distribution_lines(metrics: dict[str, Any]) -> list[str]:
    """Distribution summaries from an instrumented run's snapshot.

    This is where the flat means of :class:`SimResult` become
    distributions: occupancy and per-stage waits as p50/p95/max, the
    level of detail the paper's Sec. VII-B attribution arguments need.
    """
    lines: list[str] = []
    histograms = metrics.get("histograms", {})
    for label, key in _EXPLAIN_HISTOGRAMS:
        snapshot = histograms.get(key)
        if not snapshot or not snapshot.get("count"):
            continue
        stats = hist_stats(snapshot)
        lines.append(
            f"  {label:<14}: mean {stats['mean']:.1f}, p50 {stats['p50']}, "
            f"p95 {stats['p95']}, max {stats['max']} (n={stats['count']})"
        )
    counters = metrics.get("counters", {})
    stalls = counters.get("lwd_stalls")
    if stalls:
        lines.append(f"  LWD stalls    : {stalls} lane-dispatch attempts blocked")
    return lines
