"""The cycle-level out-of-order pipeline with the SAVE engine.

One :class:`PipelineSimulator` runs one µop trace (usually a GEMM
inner-loop from :mod:`repro.kernels.gemm`) on one machine configuration
and produces both timing and architectural state.

Modeled per Table I / Secs. III-V:

* 5-wide allocation/rename into a 224-entry ROB and 97-entry RS,
* a load/store unit with 2 L1-D read ports, 1 store port, and SAVE's
  4-port broadcast cache,
* 1 or 2 fully-pipelined 512-bit VPUs (FP32 VFMA latency 4, mixed 6),
* SAVE: MGUs matching the issue width, BS instruction skipping,
  vertical / rotate-vertical coalescing with per-slot oldest-first
  selection, lane-wise or vector-wise accumulator dependences,
  16-lane horizontal compression (comparison point, +6 cycles), and
  the mixed-precision accumulator-chain ML compression with
  partial-result forwarding.

The pipeline *functionally executes* the trace in its own schedule;
per-lane program order within each accumulator chain is preserved by
construction, so the final state matches the in-order reference
bit-for-bit — the paper's software-transparency property, which the
test suite checks on every configuration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.config import CoalescingScheme, MachineConfig
from repro.core.dynuop import (
    ROLE_A,
    ROLE_ACC,
    ROLE_B,
    ROLE_MASK,
    ROLE_STORE,
    DynUop,
)
from repro.core.lsu import LoadStoreUnit, MemRequest
from repro.core.prf import PrfTracker
from repro.core.save.elm import MguStage
from repro.core.save.mixed import ChainLane, ChainManager
from repro.core.save.rotate import (
    rotation_offset,
    rotation_state_name,
    slot_for_lane,
)
from repro.core.save.window import (
    BaselineScheduler,
    HorizontalScheduler,
    SlotScheduler,
)
from repro.core.vpu import (
    TempOp,
    TempOpKind,
    compute_chain_slot,
    compute_lane,
    compute_whole,
)
from repro.isa.datatypes import FP32_LANES
from repro.isa.registers import ArchState
from repro.isa.uops import RegOperand, Uop, UopKind
from repro.kernels.stream import TraceStream
from repro.kernels.trace import DEFAULT_CHUNK, KernelTrace
from repro.memory.broadcast_cache import BroadcastCache, BroadcastCacheKind
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import Instrumentation
from repro.obs.metrics import log2_bucket


@dataclass
class SimResult:
    """Outcome of one pipeline run."""

    name: str
    cycles: int
    freq_ghz: float
    uop_count: int
    fma_count: int
    vpu_ops: int
    vpu_lane_slots: int
    effectual_lanes: int
    pass_through_lanes: int
    skipped_fmas: int
    stall_rob_cycles: int
    stall_rs_cycles: int
    mgu_processed: int
    l1_port_accesses: int
    b_cache_hit_rate: float
    b_cache_reads_saved: int
    #: Mean combination-window size over busy cycles (SAVE only).
    mean_cw: float = 0.0
    #: Peak base physical-register occupancy (32 + in-flight dests).
    prf_peak_base: int = 32
    #: Peak live rotated-copy count (Sec. IV-B register overhead).
    prf_peak_copies: int = 0
    #: Metrics snapshot (``repro.obs``), present only when the run was
    #: instrumented: per-stage wait histograms, CW-occupancy and
    #: lane-utilisation distributions, structure peaks, event counters.
    metrics: Optional[dict] = None
    final_state: Optional[ArchState] = None
    #: Which engine tier produced this result ("exact", "fast",
    #: "analytic").  Carried everywhere so tiers never mix silently.
    engine: str = "exact"
    #: Which skip mechanism the run modeled ("save", "sparce",
    #: "indexmac").  Stamped by callers that apply the mechanism axis
    #: (:class:`repro.experiments.executor.PointJob`); a bare
    #: ``simulate`` call describes the machine it was given.
    mechanism: str = "save"

    @property
    def prf_rotation_overhead(self) -> float:
        """Rotation's extra register demand over the base occupancy."""
        return self.prf_peak_copies / self.prf_peak_base if self.prf_peak_base else 0.0

    @property
    def time_ns(self) -> float:
        """Wall-clock execution time."""
        return self.cycles / self.freq_ghz

    @property
    def fmas_per_cycle(self) -> float:
        """Retired VFMA throughput."""
        return self.fma_count / self.cycles if self.cycles else 0.0

    @property
    def lane_utilisation(self) -> float:
        """Mean occupied temp slots per issued VPU op (max 16)."""
        if not self.vpu_ops:
            return 0.0
        return self.vpu_lane_slots / (self.vpu_ops * FP32_LANES)

    def speedup_over(self, other: SimResult) -> float:
        """Wall-clock speedup of this run relative to ``other``."""
        return other.time_ns / self.time_ns


class PipelineSimulator:
    """Runs one trace (or chunked trace stream) on one machine configuration.

    Accepts anything satisfying the :class:`repro.kernels.stream.TraceStream`
    contract — a materialized :class:`KernelTrace` or a generator-backed
    stream.  µops are pulled chunk-by-chunk into a small allocation
    buffer, so the simulator never holds more than one chunk of
    unallocated µops plus the in-flight ROB window, regardless of trace
    length (the out-of-core sweep contract).
    """

    def __init__(
        self,
        trace: Union[KernelTrace, TraceStream],
        config: MachineConfig,
        warm_level: Optional[str] = "l2",
        keep_state: bool = True,
        max_cycles: int = 5_000_000,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.keep_state = keep_state
        self.max_cycles = max_cycles
        # Observability: ``None`` (the default) keeps every hook to one
        # pointer comparison; ``_tracing`` additionally gates event
        # assembly so metrics-only runs never build event dicts.
        self.obs = obs
        self._tracing = obs is not None and obs.tracing
        if obs is not None and not obs.kernel:
            obs.kernel = trace.name

        self.init_state = trace.fresh_state()
        memory = self.init_state.memory

        save = config.save
        if save.enabled and save.broadcast_cache != BroadcastCacheKind.NONE:
            self.bcache: Optional[BroadcastCache] = BroadcastCache(
                save.broadcast_cache,
                memory.read,
                entries=save.broadcast_cache_entries,
                ports=save.broadcast_cache_ports,
            )
        else:
            self.bcache = None
        self.hierarchy = MemoryHierarchy(
            config.hierarchy,
            sharing_cores=config.sharing_cores,
            freq_ghz=config.core.freq_ghz,
            broadcast_cache=self.bcache,
        )
        if warm_level:
            self._warm_caches(warm_level)
        self.lsu = LoadStoreUnit(
            memory,
            self.hierarchy,
            self.bcache,
            l1_read_ports=config.hierarchy.l1_read_ports,
            store_ports=config.core.store_ports,
            obs=obs,
        )

        # Schedulers.
        self.save_enabled = save.enabled
        self.lwd = save.enabled and save.lane_wise_dependence
        self.mp_technique = save.enabled and save.mixed_precision_technique
        self.scheme = save.coalescing if save.enabled else None
        # Scheme predicates as plain bools: enum comparisons in the
        # per-lane dispatch path are measurable hot-loop cost.
        self._naive = self.scheme == CoalescingScheme.NAIVE
        self._horizontal = self.scheme == CoalescingScheme.HORIZONTAL
        self.baseline_sched = BaselineScheduler()
        self.slot_sched = SlotScheduler(FP32_LANES)
        self.horizontal_sched = HorizontalScheduler()
        self.mgu = MguStage(save.mgu_count)
        self.chains = ChainManager()

        # Dynamic state.  ``_rob`` holds only un-retired µops (the ROB
        # window); ``_pending`` holds the current chunk of not-yet-
        # allocated µops pulled from the stream.  The invariant
        # "``_pending`` empty ⟹ stream exhausted" is maintained by
        # refilling eagerly, so emptiness tests are exact progress tests.
        self._rob: deque[DynUop] = deque()
        self._chunks = trace.iter_uops(DEFAULT_CHUNK)
        self._pending: deque[Uop] = deque()
        self._exhausted = False
        self.alloc_ptr = 0
        self.retire_ptr = 0
        self.rob_count = 0
        self.rs_count = 0
        self.reg_producer: dict[int, DynUop] = {}
        self.kreg_producer: dict[int, DynUop] = {}
        self._scalar_queue: deque[DynUop] = deque()
        self._vpu_events: dict[int, list[TempOp]] = {}
        self._load_events: dict[int, list[MemRequest]] = {}
        self._scalar_events: dict[int, list[DynUop]] = {}
        self._worklist: deque[tuple[str, DynUop, int]] = deque()

        # Stats.
        self.cycle = 0
        self.vpu_ops = 0
        self.vpu_lane_slots = 0
        self.effectual_lanes = 0
        self.pass_through_lanes = 0
        self.skipped_fmas = 0
        self.stall_rob_cycles = 0
        self.stall_rs_cycles = 0
        # Counted at pull time (chunk by chunk); equals the whole-trace
        # FMA count once the stream is drained — which it is by the time
        # ``_result`` reads it.
        self.fma_count = 0
        self._refill()
        # Combination-window gauge: VFMAs currently active in the RS
        # with unscheduled lanes (Sec. III: "the CW is often 24-28").
        self._cw_size = 0
        self._cw_samples = 0
        self._cw_sum = 0
        self.prf = PrfTracker()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _refill(self) -> None:
        """Pull the next chunk(s) until µops are pending or the stream ends."""
        pending = self._pending
        while not pending and not self._exhausted:
            try:
                chunk = next(self._chunks)
            except StopIteration:
                self._exhausted = True
                return
            pending.extend(chunk)
            self.fma_count += sum(1 for u in chunk if u.is_fma())

    def _warm_caches(self, level: str) -> None:
        """Pre-fill the input matrices (A, B) into the hierarchy.

        Models the paper's warm-up (previous operation's output resident)
        plus the software prefetch/blocking that keeps a tuned GEMM's
        streaming inputs out of DRAM; the C output stays cold.
        """
        addrs: list[int] = []
        for name in ("A", "B"):
            region = self.trace.regions.get(name)
            if region is None:
                continue
            addrs.extend(range(region.base, region.end, 64))
        self.hierarchy.warm(addrs, level=level)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Simulate to completion and return the results.

        The loop body is guarded so idle stages (empty MGU queue, empty
        scalar/memory queues, fully-allocated trace) cost one truthiness
        check instead of a call — most cycles of a memory-bound stretch
        touch none of them.
        """
        cycle = 0
        save_enabled = self.save_enabled
        mgu = self.mgu
        lsu = self.lsu
        worklist = self._worklist
        scalar_queue = self._scalar_queue
        load_events = self._load_events
        max_cycles = self.max_cycles
        pending = self._pending
        # "Work remains" ⟺ µops pending allocation (pending empty ⟹
        # stream exhausted, the ``_refill`` invariant) or in flight in
        # the ROB — the streaming equivalent of ``retire_ptr < total``.
        while pending or self.retire_ptr < self.alloc_ptr:
            self.cycle = cycle
            self._process_completions(cycle)
            if worklist:
                self._drain_worklist()
            self._retire()
            if save_enabled and len(mgu):
                for dyn in mgu.step():
                    self._activate(dyn)
                if worklist:
                    self._drain_worklist()
            self._schedule(cycle)
            if scalar_queue:
                self._issue_scalars(cycle)
            if lsu.pending():
                for complete_cycle, request in lsu.service(cycle):
                    load_events.setdefault(complete_cycle, []).append(request)
            if pending:
                self._allocate(cycle)
            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles "
                    f"(retired {self.retire_ptr}/{self.alloc_ptr} allocated)"
                )
        return self._result(cycle)

    def _result(self, cycles: int) -> SimResult:
        bc_stats = self.bcache.stats if self.bcache is not None else None
        metrics = None
        if self.obs is not None:
            self._record_structure_metrics(cycles)
            metrics = self.obs.metrics.snapshot()
        return SimResult(
            name=self.trace.name,
            cycles=cycles,
            freq_ghz=self.config.core.freq_ghz,
            # The stream is fully drained by result time, so the number
            # of allocations *is* the trace length.
            uop_count=self.alloc_ptr,
            fma_count=self.fma_count,
            vpu_ops=self.vpu_ops,
            vpu_lane_slots=self.vpu_lane_slots,
            effectual_lanes=self.effectual_lanes,
            pass_through_lanes=self.pass_through_lanes,
            skipped_fmas=self.skipped_fmas,
            stall_rob_cycles=self.stall_rob_cycles,
            stall_rs_cycles=self.stall_rs_cycles,
            mgu_processed=self.mgu.processed,
            l1_port_accesses=self.lsu.stats.l1_port_accesses,
            b_cache_hit_rate=bc_stats.hit_rate if bc_stats else 0.0,
            b_cache_reads_saved=bc_stats.l1_reads_saved if bc_stats else 0,
            mean_cw=self._cw_sum / self._cw_samples if self._cw_samples else 0.0,
            prf_peak_base=self.prf.peak_base,
            prf_peak_copies=self.prf.peak_copies,
            metrics=metrics,
            final_state=self.final_state() if self.keep_state else None,
        )

    def _record_structure_metrics(self, cycles: int) -> None:
        """End-of-run structure peaks and totals (metrics enabled only)."""
        m = self.obs.metrics
        m.counter("sim_cycles").inc(cycles)
        m.counter("sim_runs").inc()
        m.gauge("mgu_peak_queue").set_max(self.mgu.peak_queue)
        m.gauge("slot_sched_peak_pending").set_max(self.slot_sched.peak_pending)
        m.gauge("horizontal_sched_peak_pending").set_max(
            self.horizontal_sched.peak_pending
        )
        m.gauge("prf_peak_copies").set_max(self.prf.peak_copies)
        m.counter("effectual_lanes").inc(self.effectual_lanes)
        m.counter("pass_through_lanes").inc(self.pass_through_lanes)
        m.counter("stall_rob_cycles").inc(self.stall_rob_cycles)
        m.counter("stall_rs_cycles").inc(self.stall_rs_cycles)
        if self.chains.created:
            m.counter("chains_created").inc(self.chains.created)
            m.counter("chain_mls_appended").inc(self.chains.mls_appended)

    def final_state(self) -> ArchState:
        """Reconstruct the architectural state after the trace."""
        state = ArchState(self.init_state.memory)
        for reg in range(32):
            producer = self.reg_producer.get(reg)
            if producer is not None and producer.out is not None:
                state.write_vreg(reg, producer.out)
            else:
                state.write_vreg(reg, self.init_state.read_vreg(reg))
        for kreg in range(8):
            producer = self.kreg_producer.get(kreg)
            if producer is not None:
                state.write_kreg(kreg, producer.uop.imm)
            else:
                state.write_kreg(kreg, self.init_state.read_kreg(kreg))
        return state

    # ------------------------------------------------------------------
    # Allocation / rename
    # ------------------------------------------------------------------

    def _needs_rs(self, uop: Uop) -> bool:
        return uop.kind not in (UopKind.VZERO, UopKind.KMOV)

    def _allocate(self, cycle: int) -> None:
        budget = self.config.core.issue_width
        pending = self._pending
        while budget > 0 and pending:
            if self.rob_count >= self.config.core.rob_entries:
                self.stall_rob_cycles += 1
                return
            uop = pending[0]
            if self._needs_rs(uop) and self.rs_count >= self.config.core.rs_entries:
                self.stall_rs_cycles += 1
                return
            pending.popleft()
            dyn = DynUop(uop, self.alloc_ptr)
            dyn.alloc_cycle = cycle
            self._rob.append(dyn)
            self.alloc_ptr += 1
            self.rob_count += 1
            budget -= 1
            if not pending:
                self._refill()
            if self._tracing:
                self.obs.emit(
                    cycle, "dispatch", seq=dyn.seq, kind=uop.kind.name.lower()
                )
            self._rename(dyn)
            self.prf.on_rename(dyn)

    def _rename(self, dyn: DynUop) -> None:
        uop = dyn.uop
        kind = uop.kind
        if kind == UopKind.VZERO:
            dyn.set_output(np.zeros(FP32_LANES, dtype=np.float32))
            self.reg_producer[uop.dst] = dyn
            return
        if kind == UopKind.KMOV:
            dyn.completed = True
            self.kreg_producer[uop.dst] = dyn
            return
        self.rs_count += 1
        if kind == UopKind.SCALAR:
            self._scalar_queue.append(dyn)
            return
        if kind in (UopKind.VLOAD, UopKind.VBCAST):
            self.reg_producer[uop.dst] = dyn
            self.lsu.enqueue(MemRequest(dyn, uop.src_a, "load", dyn.alloc_cycle))
            return
        if kind == UopKind.VSTORE:
            source: RegOperand = uop.src_a
            producer = self.reg_producer.get(source.reg)
            dyn.a_src = producer
            if producer is None:
                dyn.out = self.init_state.read_vreg(source.reg)
                self.lsu.enqueue(MemRequest(dyn, uop.src_b, "store", dyn.alloc_cycle))
            elif producer.completed:
                self.lsu.enqueue(MemRequest(dyn, uop.src_b, "store", dyn.alloc_cycle))
            else:
                producer.consumers.append((dyn, ROLE_STORE))
            return
        # VFMA / VDPBF16.
        self._rename_fma(dyn)

    def _rename_fma(self, dyn: DynUop) -> None:
        uop = dyn.uop
        if self.save_enabled and self.scheme == CoalescingScheme.ROTATE_VERTICAL:
            dyn.rotation = rotation_offset(uop.accum, self.config.save.rotation_states)

        producer = self.reg_producer.get(uop.accum)
        dyn.acc_src = producer
        if producer is None:
            dyn.acc_init = self.init_state.read_vreg(uop.accum)
        elif not producer.completed or self.mp_technique:
            # MP technique also needs append-ordering notifications.
            producer.consumers.append((dyn, ROLE_ACC))

        for operand, role in ((uop.src_a, ROLE_A), (uop.src_b, ROLE_B)):
            if isinstance(operand, RegOperand):
                src = self.reg_producer.get(operand.reg)
                if src is None:
                    value = self.init_state.read_vreg(operand.reg)
                    self._set_mult_value(dyn, role, value)
                elif src.completed:
                    self._set_mult_value(dyn, role, src.out)
                else:
                    src.consumers.append((dyn, role))
            else:
                self.lsu.enqueue(MemRequest(dyn, operand, role, dyn.alloc_cycle))

        if uop.wmask is not None:
            kproducer = self.kreg_producer.get(uop.wmask)
            if kproducer is None:
                dyn.mask_bits = self.init_state.read_kreg(uop.wmask)
            elif kproducer.completed:
                dyn.mask_bits = kproducer.uop.imm
            else:
                kproducer.consumers.append((dyn, ROLE_MASK))

        self.reg_producer[uop.dst] = dyn
        self._check_fma_progress(dyn)

    @staticmethod
    def _set_mult_value(dyn: DynUop, role: str, value: np.ndarray) -> None:
        if role == ROLE_A:
            dyn.a_value = np.asarray(value, dtype=np.float32)
        else:
            dyn.b_value = np.asarray(value, dtype=np.float32)

    # ------------------------------------------------------------------
    # Readiness plumbing
    # ------------------------------------------------------------------

    def _check_fma_progress(self, dyn: DynUop) -> None:
        """Advance an FMA whose inputs may have just become ready."""
        if not dyn.multiplicands_ready():
            return
        if not self.save_enabled:
            if (
                not dyn.baseline_queued
                and dyn.acc_fully_available()
            ):
                dyn.baseline_queued = True
                self.baseline_sched.insert(dyn.seq, dyn)
            return
        if dyn.elm is None and not dyn.mgu_queued:
            dyn.mgu_queued = True
            self.mgu.enqueue(dyn)

    def _activate(self, dyn: DynUop) -> None:
        """ELM ready: the µop enters the combination window."""
        dyn.active = True
        dyn.activate_cycle = self.cycle
        if self.obs is not None:
            self._note_activation(dyn)
        if dyn.elm == 0:
            self.skipped_fmas += 1
        if self.scheme == CoalescingScheme.NAIVE:
            # Strawman: no cross-instruction combining.  BS-skipped µops
            # pass through; anything else issues as a whole VFMA.
            if dyn.elm == 0:
                self._dispatch_all_lanes(dyn)
            else:
                self._try_queue_naive(dyn)
            return
        if dyn.mixed and self.mp_technique:
            self._try_append_chain(dyn)
            return
        self._dispatch_all_lanes(dyn)

    def _try_queue_naive(self, dyn: DynUop) -> None:
        """Queue a whole VFMA in the strawman scheme (vector-wise deps)."""
        if dyn.baseline_queued or not dyn.active or not dyn.elm:
            return
        if not dyn.acc_fully_available():
            return
        dyn.baseline_queued = True
        self.effectual_lanes += bin(dyn.elm).count("1")
        self.pass_through_lanes += FP32_LANES - bin(dyn.elm).count("1")
        self._cw_enter(dyn)
        self.baseline_sched.insert(dyn.seq, dyn)

    def _dispatch_all_lanes(self, dyn: DynUop) -> None:
        try_dispatch = self._try_dispatch_lane
        for lane in range(FP32_LANES):
            try_dispatch(dyn, lane)

    def _try_dispatch_lane(self, dyn: DynUop, lane: int) -> None:
        """Dispatch one lane: pass-through or queue for a VPU slot."""
        bit = 1 << lane
        if dyn.lanes_dispatched_mask & bit or not dyn.active:
            return
        if self._naive and dyn.elm:
            # Strawman: non-skipped µops issue whole, never lane-wise.
            return
        mixed_mp = dyn.mixed and self.mp_technique
        # Only pass-through lanes reach here in MP-technique mode.
        if mixed_mp and dyn.ml_effectual[lane]:
            return
        if self.lwd or mixed_mp:
            if not dyn.acc_lane_available(lane):
                # LWD lane-order stall: the lane attempted dispatch but
                # its accumulator input lane has not completed yet.
                if self.obs is not None:
                    self.obs.metrics.counter("lwd_stalls").inc()
                    if self._tracing:
                        self.obs.emit(
                            self.cycle, "lwd_stall", seq=dyn.seq, lane=lane
                        )
                return
        elif not dyn.acc_fully_available():
            return

        dyn.lanes_dispatched_mask |= bit
        if dyn.elm & bit and not mixed_mp:
            self.effectual_lanes += 1
            dyn.queued_lanes += 1
            self._cw_enter(dyn)
            if self._horizontal:
                self.horizontal_sched.insert(dyn.seq, (dyn, lane))
            else:
                slot = slot_for_lane(lane, dyn.rotation)
                self.slot_sched.insert(slot, dyn.seq, (dyn, lane))
        else:
            # Ineffectual (or masked) lane: the accumulator value passes
            # through unchanged, with no VPU work.
            self.pass_through_lanes += 1
            value = dyn.acc_lane_value(lane)
            completed = dyn.mark_lane_done(lane, value)
            self._worklist.append(("lane", dyn, lane))
            if completed:
                self._worklist.append(("full", dyn, -1))
        self._maybe_free_rs(dyn)

    def _cw_enter(self, dyn: DynUop) -> None:
        if not dyn.in_cw:
            dyn.in_cw = True
            self._cw_size += 1

    def _cw_leave(self, dyn: DynUop) -> None:
        if dyn.in_cw:
            dyn.in_cw = False
            self._cw_size -= 1

    def _maybe_free_rs(self, dyn: DynUop) -> None:
        if not dyn.rs_freed and dyn.all_lanes_dispatched():
            dyn.rs_freed = True
            self.rs_count -= 1

    # ------------------------------------------------------------------
    # Mixed-precision accumulator chains
    # ------------------------------------------------------------------

    def _chain_root_of(self, dyn: DynUop) -> DynUop:
        if dyn.chain_root is not None:
            return dyn.chain_root
        prev = dyn.acc_src
        if prev is not None and prev.is_fma and prev.mixed:
            dyn.chain_root = self._chain_root_of(prev)
        else:
            dyn.chain_root = dyn
        return dyn.chain_root

    def _try_append_chain(self, dyn: DynUop) -> None:
        """Append an active µop's MLs to its accumulator chain.

        Appending must follow program order within a chain, so a µop
        waits for its chain predecessor to have appended first.
        """
        if dyn.appended or not dyn.active:
            return
        prev = dyn.acc_src
        if prev is not None and prev.is_fma and prev.mixed and not prev.appended:
            return
        dyn.appended = True
        root = self._chain_root_of(dyn)
        dyn.ml_remaining = [len(mls) for mls in dyn.ml_effectual]
        for lane in range(FP32_LANES):
            mls = dyn.ml_effectual[lane]
            if not mls:
                self._try_dispatch_lane(dyn, lane)
                continue
            dyn.mark_lane_dispatched(lane)
            self._cw_enter(dyn)
            self.effectual_lanes += len(mls)
            slot = slot_for_lane(lane, rotation_offset(
                root.uop.accum, self.config.save.rotation_states
            ) if self.scheme == CoalescingScheme.ROTATE_VERTICAL else 0)
            chain = self.chains.lane(root, lane, slot)
            for p in mls:
                chain.append(dyn, p)
            self.chains.mls_appended += len(mls)
            if self._tracing:
                self.obs.emit(
                    self.cycle,
                    "chain_append",
                    seq=dyn.seq,
                    root=root.seq,
                    lane=lane,
                    mls=list(mls),
                )
            if chain.acc_value is None and root.acc_lane_available(lane):
                chain.acc_value = root.acc_lane_value(lane)
            self._enqueue_chain_if_ready(chain)
        self._maybe_free_rs(dyn)
        # Unblock chain successors waiting on append order.
        for consumer, role in dyn.consumers:
            if role == ROLE_ACC and consumer.is_fma and consumer.mixed:
                self._try_append_chain(consumer)

    def _enqueue_chain_if_ready(self, chain: ChainLane) -> None:
        if chain.ready() and not chain.enqueued:
            chain.enqueued = True
            if self.scheme == CoalescingScheme.HORIZONTAL:
                self.horizontal_sched.insert(chain.head_seq(), chain)
            else:
                self.slot_sched.insert(chain.slot, chain.head_seq(), chain)

    # ------------------------------------------------------------------
    # Scheduling and VPU issue
    # ------------------------------------------------------------------

    def _schedule(self, cycle: int) -> None:
        num_vpus = self.config.core.num_vpus
        if self.save_enabled and self._cw_size > 0:
            self._cw_samples += 1
            self._cw_sum += self._cw_size
            if self.obs is not None:
                self.obs.metrics.histogram("cw_occupancy").record(self._cw_size)
        if not self.save_enabled or self.scheme == CoalescingScheme.NAIVE:
            if not self.baseline_sched.pending():
                return
            for _ in range(num_vpus):
                dyn = self.baseline_sched.pop_oldest()
                if dyn is None:
                    return
                dyn.rs_freed = True
                self.rs_count -= 1
                self._cw_leave(dyn)
                dyn.lanes_dispatched_mask = dyn.full_mask
                op = TempOp(
                    TempOpKind.WHOLE,
                    cycle,
                    self.config.fma_latency(dyn.mixed),
                    whole=dyn,
                )
                self._issue(op)
            return

        if self.scheme == CoalescingScheme.HORIZONTAL:
            if not self.horizontal_sched.pending():
                return
            for _ in range(num_vpus):
                op = TempOp(TempOpKind.LANES, cycle, 0)
                for _ in range(FP32_LANES):
                    entry = self.horizontal_sched.pop_oldest()
                    if entry is None:
                        break
                    if isinstance(entry, ChainLane):
                        entry.enqueued = False
                        entry.busy = True
                        op.kind = TempOpKind.CHAIN
                        op.chain_entries.append((entry, entry.take(2), entry.acc_value))
                    else:
                        op.lane_entries.append(entry)
                        self._cw_pop_lane(entry[0])
                if op.is_empty():
                    return
                op.latency = self._op_latency(op)
                self._issue(op)
            return

        # (Rotate-)vertical coalescing: per-slot oldest-first selection.
        if not self.slot_sched.pending():
            return
        ops = [TempOp(TempOpKind.LANES, cycle, 0) for _ in range(num_vpus)]
        any_filled = False
        pop_oldest = self.slot_sched.pop_oldest
        for slot in range(FP32_LANES):
            for op in ops:
                item = pop_oldest(slot)
                if item is None:
                    break
                any_filled = True
                if isinstance(item, ChainLane):
                    item.enqueued = False
                    item.busy = True
                    mls = item.take(2)
                    op.kind = TempOpKind.CHAIN
                    op.chain_entries.append((item, mls, item.acc_value))
                else:
                    op.lane_entries.append(item)
                    self._cw_pop_lane(item[0])
        if not any_filled:
            return
        for op in ops:
            if op.is_empty():
                continue
            op.latency = self._op_latency(op)
            self._issue(op)

    def _op_latency(self, op: TempOp) -> int:
        if op.chain_entries:
            return self.config.fma_latency(True)
        return self.config.fma_latency(op.lane_entries[0][0].mixed)

    def _cw_pop_lane(self, dyn: DynUop) -> None:
        dyn.queued_lanes -= 1
        if dyn.queued_lanes == 0:
            self._cw_leave(dyn)

    def _issue(self, op: TempOp) -> None:
        self.vpu_ops += 1
        self.vpu_lane_slots += op.lane_count()
        if self.obs is not None:
            self._note_issue(op)
        self._vpu_events.setdefault(op.complete_cycle, []).append(op)

    # ------------------------------------------------------------------
    # Observability hooks (reached only when instrumentation is on)
    # ------------------------------------------------------------------

    def _note_activation(self, dyn: DynUop) -> None:
        """ELM generated: record the distribution and SAVE skip events."""
        m = self.obs.metrics
        m.histogram("elm_wait_cycles", log2_bucket).record(
            dyn.activate_cycle - dyn.alloc_cycle
        )
        m.histogram("elm_popcount").record(bin(dyn.elm).count("1"))
        if dyn.elm == 0:
            m.counter("bs_skips").inc()
        if self._tracing:
            self.obs.emit(self.cycle, "elm", seq=dyn.seq, elm=dyn.elm)
            if dyn.elm == 0:
                self.obs.emit(self.cycle, "bs_skip", seq=dyn.seq)

    def _note_issue(self, op: TempOp) -> None:
        """VPU op issued: lane-occupancy distribution plus merge detail."""
        m = self.obs.metrics
        m.histogram("lanes_per_op").record(op.lane_count())
        m.counter(f"vpu_ops_{op.kind.name.lower()}").inc()
        if not self._tracing:
            return
        cycle = op.issue_cycle
        self.obs.emit(cycle, "issue", **op.describe())
        if op.kind == TempOpKind.WHOLE:
            return
        scheme = self.scheme.name.lower() if self.scheme is not None else "baseline"
        entries = []
        for dyn, lane in op.lane_entries:
            entries.append(
                {
                    "seq": dyn.seq,
                    "lane": lane,
                    "slot": slot_for_lane(lane, dyn.rotation),
                    "rstate": rotation_state_name(dyn.rotation),
                }
            )
        for chain, mls, _acc in op.chain_entries:
            entries.append(
                {
                    "root": chain.root.seq,
                    "lane": chain.lane,
                    "slot": chain.slot,
                    "mls": [[dyn.seq, p] for dyn, p in mls],
                }
            )
        self.obs.emit(cycle, "merge", scheme=scheme, entries=entries)

    def _note_retire(self, dyn: DynUop) -> None:
        """Per-stage cycle attribution, recorded once at retirement."""
        m = self.obs.metrics
        if dyn.is_fma:
            if dyn.activate_cycle >= 0:
                m.histogram("cw_residency_cycles", log2_bucket).record(
                    (dyn.complete_cycle if dyn.complete_cycle >= 0 else self.cycle)
                    - dyn.activate_cycle
                )
            if dyn.complete_cycle >= 0:
                m.histogram("retire_wait_cycles", log2_bucket).record(
                    self.cycle - dyn.complete_cycle
                )
        if self._tracing:
            self.obs.emit(self.cycle, "retire", seq=dyn.seq)

    def _issue_scalars(self, cycle: int) -> None:
        for _ in range(min(self.config.core.scalar_ports, len(self._scalar_queue))):
            dyn = self._scalar_queue.popleft()
            self._scalar_events.setdefault(cycle + 1, []).append(dyn)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _process_completions(self, cycle: int) -> None:
        if self._load_events:
            for request in self._load_events.pop(cycle, ()):
                self._complete_memory(request)
        if self._vpu_events:
            for op in self._vpu_events.pop(cycle, ()):
                self._complete_vpu_op(op)
        if self._scalar_events:
            for dyn in self._scalar_events.pop(cycle, ()):
                dyn.completed = True
                self.rs_count -= 1
                dyn.rs_freed = True

    def _complete_memory(self, request: MemRequest) -> None:
        dyn = request.dyn
        if request.role == "store":
            dyn.completed = True
            self.rs_count -= 1
            dyn.rs_freed = True
            return
        if request.role == "load":
            value = self.lsu.resolve_value(request.operand)
            self.rs_count -= 1
            dyn.rs_freed = True
            dyn.set_output(value)
            self._worklist.append(("full", dyn, -1))
            return
        # Embedded memory operand of an FMA.
        value = self.lsu.resolve_value(request.operand)
        self._set_mult_value(dyn, request.role, value)
        self._check_fma_progress(dyn)

    def _complete_vpu_op(self, op: TempOp) -> None:
        if op.kind == TempOpKind.WHOLE:
            dyn = op.whole
            dyn.set_output(compute_whole(dyn))
            self._worklist.append(("full", dyn, -1))
            return
        for dyn, lane in op.lane_entries:
            value = compute_lane(dyn, lane)
            completed = dyn.mark_lane_done(lane, value)
            self._worklist.append(("lane", dyn, lane))
            if completed:
                self._worklist.append(("full", dyn, -1))
        # CHAIN: mixed-precision ML slots.
        for chain, mls, acc_base in op.chain_entries:
            final, partials = compute_chain_slot(mls, chain.lane, acc_base)
            chain.acc_value = final
            chain.busy = False
            for dyn, _p, partial in partials:
                dyn.ml_remaining[chain.lane] -= 1
                if dyn.ml_remaining[chain.lane] == 0:
                    completed = dyn.mark_lane_done(chain.lane, partial)
                    self._worklist.append(("lane", dyn, chain.lane))
                    if completed:
                        self._cw_leave(dyn)
                        self._worklist.append(("full", dyn, -1))
            self._enqueue_chain_if_ready(chain)

    # ------------------------------------------------------------------
    # Wake-up
    # ------------------------------------------------------------------

    def _drain_worklist(self) -> None:
        while self._worklist:
            kind, dyn, lane = self._worklist.popleft()
            if kind == "lane":
                self._on_lane_completion(dyn, lane)
            else:
                self._on_full_completion(dyn)

    def _on_lane_completion(self, producer: DynUop, lane: int) -> None:
        for consumer, role in producer.consumers:
            if role != ROLE_ACC:
                continue
            if consumer.mixed and self.mp_technique:
                self._chain_acc_arrival(consumer, lane)
                self._try_dispatch_lane(consumer, lane)
            elif self.lwd and consumer.active:
                self._try_dispatch_lane(consumer, lane)

    def _chain_acc_arrival(self, consumer: DynUop, lane: int) -> None:
        """A chain root's accumulator input lane became available."""
        if not consumer.appended:
            return
        root = self._chain_root_of(consumer)
        if root is not consumer:
            return
        chain = self.chains.existing_lane(root, lane)
        if chain is not None and chain.acc_value is None:
            chain.acc_value = root.acc_lane_value(lane)
            self._enqueue_chain_if_ready(chain)

    def _on_full_completion(self, producer: DynUop) -> None:
        producer.complete_cycle = self.cycle
        for consumer, role in producer.consumers:
            if role == ROLE_A:
                consumer.a_value = producer.out
                self._check_fma_progress(consumer)
            elif role == ROLE_B:
                consumer.b_value = producer.out
                self._check_fma_progress(consumer)
            elif role == ROLE_MASK:
                consumer.mask_bits = producer.uop.imm
                self._check_fma_progress(consumer)
            elif role == ROLE_STORE:
                self.lsu.enqueue(
                    MemRequest(consumer, consumer.uop.src_b, "store", self.cycle)
                )
            elif role == ROLE_ACC:
                if not self.save_enabled:
                    self._check_fma_progress(consumer)
                elif self.scheme == CoalescingScheme.NAIVE:
                    if consumer.active:
                        if consumer.elm == 0:
                            self._dispatch_all_lanes(consumer)
                        else:
                            self._try_queue_naive(consumer)
                elif consumer.mixed and self.mp_technique:
                    if consumer.appended:
                        for lane in range(FP32_LANES):
                            self._chain_acc_arrival(consumer, lane)
                            self._try_dispatch_lane(consumer, lane)
                elif consumer.active:
                    self._dispatch_all_lanes(consumer)

    # ------------------------------------------------------------------
    # Retire
    # ------------------------------------------------------------------

    def _retire(self) -> None:
        budget = self.config.core.issue_width
        obs = self.obs
        rob = self._rob
        while budget > 0 and rob and rob[0].completed:
            dyn = rob.popleft()
            dyn.retired = True
            self.prf.on_retire(dyn)
            if obs is not None:
                self._note_retire(dyn)
            self.retire_ptr += 1
            self.rob_count -= 1
            budget -= 1


def simulate(
    trace: Union[KernelTrace, TraceStream],
    config: MachineConfig,
    warm_level: Optional[str] = "l2",
    keep_state: bool = True,
    obs: Optional[Instrumentation] = None,
    engine: str = "exact",
) -> SimResult:
    """Convenience wrapper: run one trace on one configuration.

    Pass an :class:`repro.obs.Instrumentation` as ``obs`` to collect
    metrics and (if its sink is real) structured trace events; the
    returned :attr:`SimResult.metrics` then holds the snapshot.

    ``engine`` selects the tier: ``"exact"`` (this module's cycle-level
    pipeline, the default), or ``"fast"``/``"analytic"`` which delegate
    to :mod:`repro.fastsim`'s estimators (no µop execution, no
    ``final_state``/``metrics``); results carry an ``engine`` tag.
    """
    if engine != "exact":
        # Imported lazily: repro.fastsim depends on modules that import
        # this one, so a module-level import would be a cycle.
        from repro.fastsim import simulate_trace

        return simulate_trace(trace, config, engine)
    return PipelineSimulator(
        trace, config, warm_level=warm_level, keep_state=keep_state, obs=obs
    ).run()
