"""Load/store unit: port-limited access to the B$ and the L1-D.

Per cycle the LSU serves:

* up to ``broadcast_cache_ports`` broadcast requests through the B$
  (when SAVE's B$ is enabled) — a B$ hit that still needs data from the
  L1-D (mask design, non-zero element) falls through to the L1 queue,
* up to ``l1_read_ports`` requests from the L1 queue (vector loads,
  broadcasts without a B$, and B$ fall-throughs),
* up to ``store_ports`` stores.

Values are resolved from the functional memory at service time, so the
pipeline's operands carry real data (feeding the MGUs and the
transparency checks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dynuop import DynUop
from repro.isa.datatypes import BF16_LANES, FP32_LANES
from repro.isa.registers import Memory
from repro.isa.uops import MemOperand
from repro.memory.broadcast_cache import BroadcastCache, BroadcastCacheKind
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import Instrumentation


@dataclass
class MemRequest:
    """One outstanding memory access."""

    dyn: DynUop
    operand: MemOperand
    role: str  # "a" | "b" | "load" | "store"
    enqueue_cycle: int
    #: Set when a B$ probe already ran and deferred to the L1 queue.
    b_cache_probed: bool = False
    b_cache_latency: int = 0

    @property
    def is_broadcast(self) -> bool:
        return self.operand.broadcast


@dataclass
class LsuStats:
    """Counters for LSU behaviour."""

    broadcast_requests: int = 0
    vector_loads: int = 0
    stores: int = 0
    l1_port_accesses: int = 0
    b_cache_serviced: int = 0


class LoadStoreUnit:
    """Port-limited memory pipeline front."""

    def __init__(
        self,
        memory: Memory,
        hierarchy: MemoryHierarchy,
        broadcast_cache: Optional[BroadcastCache],
        l1_read_ports: int = 2,
        store_ports: int = 1,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.memory = memory
        self.hierarchy = hierarchy
        self.broadcast_cache = broadcast_cache
        self.l1_read_ports = l1_read_ports
        self.store_ports = store_ports
        self.obs = obs
        self._broadcast_queue: deque[MemRequest] = deque()
        self._l1_queue: deque[MemRequest] = deque()
        self._store_queue: deque[MemRequest] = deque()
        self.stats = LsuStats()

    # ------------------------------------------------------------------

    def enqueue(self, request: MemRequest) -> None:
        """Accept a request from allocation (loads) or issue (stores)."""
        if request.role == "store":
            self.stats.stores += 1
            self._store_queue.append(request)
        elif request.is_broadcast and self._has_b_cache():
            self.stats.broadcast_requests += 1
            self._broadcast_queue.append(request)
        else:
            if request.is_broadcast:
                self.stats.broadcast_requests += 1
            else:
                self.stats.vector_loads += 1
            self._l1_queue.append(request)

    def _has_b_cache(self) -> bool:
        return (
            self.broadcast_cache is not None
            and self.broadcast_cache.kind != BroadcastCacheKind.NONE
        )

    # ------------------------------------------------------------------
    # Value materialisation
    # ------------------------------------------------------------------

    def resolve_value(self, operand: MemOperand) -> np.ndarray:
        """Read the operand's vector value from functional memory."""
        if operand.broadcast:
            if operand.bf16:
                pair = [self.memory.read(operand.addr), self.memory.read(operand.addr + 2)]
                return np.tile(np.array(pair, dtype=np.float32), FP32_LANES)
            return np.full(FP32_LANES, self.memory.read(operand.addr), dtype=np.float32)
        lanes = BF16_LANES if operand.bf16 else FP32_LANES
        return self.memory.read_vector(operand.addr, lanes, operand.element_bytes)

    def _write_store(self, request: MemRequest) -> None:
        value = request.dyn.a_src.out if request.dyn.a_src is not None else request.dyn.out
        stride = request.operand.element_bytes
        self.memory.write_vector(request.operand.addr, value, stride)

    # ------------------------------------------------------------------
    # Per-cycle service
    # ------------------------------------------------------------------

    def service(self, cycle: int) -> list[tuple[int, MemRequest]]:
        """Serve this cycle's requests.

        Returns ``(completion_cycle, request)`` pairs; the pipeline
        delivers values to consumers at the completion cycle.
        """
        completions: list[tuple[int, MemRequest]] = []
        l1_ports_left = self.l1_read_ports
        obs = self.obs
        if obs is not None:
            obs.metrics.gauge("lsu_peak_pending").set_max(self.pending())

        # Broadcast path through the B$.
        if self._has_b_cache():
            b_ports_left = self.broadcast_cache.ports
            while self._broadcast_queue and b_ports_left > 0:
                request = self._broadcast_queue[0]
                result = self.broadcast_cache.access(request.operand.addr)
                b_ports_left -= 1
                self._broadcast_queue.popleft()
                if obs is not None:
                    name = "bcache_hit" if result.hit else "bcache_miss"
                    obs.metrics.counter(
                        "bcache_hits" if result.hit else "bcache_misses"
                    ).inc()
                    if obs.tracing:
                        obs.emit(
                            cycle,
                            name,
                            addr=request.operand.addr,
                            zero=result.value_is_zero,
                            l1_access=result.l1_access,
                        )
                if result.l1_access:
                    if l1_ports_left > 0:
                        l1_ports_left -= 1
                        self.stats.l1_port_accesses += 1
                        latency = self.hierarchy.access(request.operand.addr)
                        completions.append((cycle + latency, request))
                    else:
                        # Defer data fetch to the L1 queue; don't re-probe.
                        request.b_cache_probed = True
                        request.b_cache_latency = self.hierarchy.config.l1_latency
                        self._l1_queue.append(request)
                else:
                    self.stats.b_cache_serviced += 1
                    latency = self.hierarchy.config.l1_latency
                    completions.append((cycle + latency, request))

        # L1 read path.
        while self._l1_queue and l1_ports_left > 0:
            request = self._l1_queue.popleft()
            l1_ports_left -= 1
            self.stats.l1_port_accesses += 1
            latency = self.hierarchy.access(request.operand.addr)
            completions.append((cycle + latency, request))

        # Store path.
        store_ports_left = self.store_ports
        while self._store_queue and store_ports_left > 0:
            request = self._store_queue.popleft()
            store_ports_left -= 1
            self.hierarchy.access(request.operand.addr, is_write=True)
            self._write_store(request)
            completions.append((cycle + 1, request))
        return completions

    def pending(self) -> int:
        """Outstanding requests across all queues."""
        return (
            len(self._broadcast_queue) + len(self._l1_queue) + len(self._store_queue)
        )
