"""Machine configurations (Table I plus SAVE feature knobs)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.memory.broadcast_cache import BroadcastCacheKind
from repro.memory.hierarchy import HierarchyConfig


class CoalescingScheme(Enum):
    """How SAVE packs effectual lanes into VPU operations (Sec. III/IV)."""

    #: Vertical coalescing: lanes stay in their positions.
    VERTICAL = "vc"
    #: Rotate-vertical coalescing: ±1-lane rotation by accumulator R-state.
    ROTATE_VERTICAL = "rvc"
    #: Horizontal compression over all 16 lanes (the rejected design,
    #: modeled with extra latency for bubble collapse/expand).
    HORIZONTAL = "hc"
    #: The paper's introduction strawman: check lanes for zeros but never
    #: combine across instructions — a VFMA still occupies a whole VPU
    #: slot unless *all* of its lanes are ineffectual.  "This approach
    #: can seldom improve performance."
    NAIVE = "naive"


@dataclass(frozen=True)
class CoreConfig:
    """Core back-end resources (Table I, Skylake-like with 5-wide alloc)."""

    issue_width: int = 5
    rs_entries: int = 97
    rob_entries: int = 224
    num_vpus: int = 2
    freq_ghz: float = 1.7
    fp32_fma_latency: int = 4
    mixed_fma_latency: int = 6
    scalar_ports: int = 3
    store_ports: int = 1
    vector_lanes: int = 16

    def __post_init__(self) -> None:
        if self.num_vpus <= 0 or self.issue_width <= 0:
            raise ValueError("num_vpus and issue_width must be positive")
        if self.freq_ghz <= 0:
            raise ValueError("frequency must be positive")


@dataclass(frozen=True)
class SaveConfig:
    """SAVE feature selection.

    ``enabled=False`` is the paper's baseline: whole VFMAs issue to
    VPUs, no sparsity exploitation, no B$.
    """

    enabled: bool = False
    coalescing: CoalescingScheme = CoalescingScheme.ROTATE_VERTICAL
    lane_wise_dependence: bool = True
    rotation_states: int = 3
    mixed_precision_technique: bool = True
    broadcast_cache: BroadcastCacheKind = BroadcastCacheKind.DATA
    broadcast_cache_entries: int = 32
    broadcast_cache_ports: int = 4
    mgu_count: int = 5
    hc_extra_latency: int = 6

    def __post_init__(self) -> None:
        if self.rotation_states not in (1, 3):
            raise ValueError("rotation_states must be 1 (off) or 3 (paper)")
        if self.mgu_count <= 0:
            raise ValueError("mgu_count must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: core + SAVE + memory hierarchy."""

    core: CoreConfig = field(default_factory=CoreConfig)
    save: SaveConfig = field(default_factory=SaveConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    #: Cores sharing L3/DRAM (scales the L3 capacity share).
    sharing_cores: int = 1

    def fma_latency(self, mixed: bool) -> int:
        """VFMA latency, plus HC's crossbar penalty when selected."""
        base = self.core.mixed_fma_latency if mixed else self.core.fp32_fma_latency
        if (
            self.save.enabled
            and self.save.coalescing == CoalescingScheme.HORIZONTAL
        ):
            return base + self.save.hc_extra_latency
        return base

    def with_save(self, **kwargs) -> MachineConfig:
        """A copy with SAVE fields overridden."""
        return replace(self, save=replace(self.save, **kwargs))

    def with_core(self, **kwargs) -> MachineConfig:
        """A copy with core fields overridden."""
        return replace(self, core=replace(self.core, **kwargs))


#: The paper's baseline: two 512-bit VPUs at 1.7 GHz, no SAVE.
BASELINE_2VPU = MachineConfig(
    core=CoreConfig(num_vpus=2, freq_ghz=1.7),
    save=SaveConfig(enabled=False),
)

#: SAVE with both VPUs at 1.7 GHz.
SAVE_2VPU = MachineConfig(
    core=CoreConfig(num_vpus=2, freq_ghz=1.7),
    save=SaveConfig(enabled=True),
)

#: SAVE with one VPU disabled and the core boosted to 2.1 GHz
#: (Sec. IV-D power saving / frequency boosting).
SAVE_1VPU = MachineConfig(
    core=CoreConfig(num_vpus=1, freq_ghz=2.1),
    save=SaveConfig(enabled=True),
)
