"""Physical-register-file occupancy tracking (Sec. IV-B accounting).

Rotate-vertical coalescing keeps differently-rotated copies of
non-broadcasted multiplicands.  The paper bounds the cost with two
optimisations (single copy of broadcasted values; accumulators share
R-states) and claims the residue is small: "less than 25% additional
registers" for a typical explicit-broadcast kernel and "less than 5%"
for embedded broadcast — so the PRF need not grow.

:class:`PrfTracker` measures both quantities during simulation:

* **base occupancy** — committed architectural registers (32) plus
  in-flight renamed destinations (allocated at rename, freed at
  retirement of the *superseding* writer, the standard scheme —
  approximated here as freed at the writer's own retirement, which
  over-counts by at most the architectural register count and is
  conservative for the paper's claim),
* **rotation copies** — live (source value, R-state ≠ 0) pairs among
  in-flight VFMAs whose non-broadcasted multiplicand is a register.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.core.dynuop import DynUop
from repro.isa.registers import NUM_VREGS
from repro.isa.uops import RegOperand


class PrfTracker:
    """Tracks base and rotation-copy register pressure."""

    def __init__(self) -> None:
        self._in_flight_dests = 0
        self._copy_refs: dict[tuple[int, int], int] = defaultdict(int)
        self._live_copies = 0
        self.peak_base = NUM_VREGS
        self.peak_copies = 0
        #: (source id, rotation) key per dyn seq, for release at retire.
        self._dyn_copy_key: dict[int, tuple[int, int]] = {}
        self._dyn_has_dest: dict[int, bool] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def _source_id(dyn: DynUop) -> Optional[int]:
        """Identity of the non-broadcasted multiplicand's value.

        The generated kernels put the non-broadcasted vector in the B
        operand; a register operand's value identity is its producer's
        sequence number (or the architectural register for live-ins).
        """
        operand = dyn.uop.src_b
        if not isinstance(operand, RegOperand):
            return None
        if dyn.b_src is not None:
            return dyn.b_src.seq
        return -1 - operand.reg  # live-in value

    def on_rename(self, dyn: DynUop) -> None:
        """Account a µop at rename time."""
        has_dest = dyn.uop.dst is not None and dyn.uop.kind.name != "KMOV"
        self._dyn_has_dest[dyn.seq] = has_dest
        if has_dest:
            self._in_flight_dests += 1
            self.peak_base = max(self.peak_base, NUM_VREGS + self._in_flight_dests)
        if dyn.is_fma and dyn.rotation != 0:
            source = self._source_id(dyn)
            if source is not None:
                key = (source, dyn.rotation)
                self._dyn_copy_key[dyn.seq] = key
                if self._copy_refs[key] == 0:
                    self._live_copies += 1
                    self.peak_copies = max(self.peak_copies, self._live_copies)
                self._copy_refs[key] += 1

    def on_retire(self, dyn: DynUop) -> None:
        """Release a µop's register resources at retirement."""
        if self._dyn_has_dest.pop(dyn.seq, False):
            self._in_flight_dests -= 1
        key = self._dyn_copy_key.pop(dyn.seq, None)
        if key is not None:
            self._copy_refs[key] -= 1
            if self._copy_refs[key] == 0:
                self._live_copies -= 1

    # ------------------------------------------------------------------

    @property
    def rotation_overhead(self) -> float:
        """Peak rotation copies as a fraction of peak base occupancy."""
        return self.peak_copies / self.peak_base if self.peak_base else 0.0
