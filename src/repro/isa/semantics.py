"""Functional (in-order) semantics for the modeled ISA.

:class:`ReferenceExecutor` runs a µop trace sequentially against an
:class:`~repro.isa.registers.ArchState`.  It is the golden model that the
out-of-order pipeline (with or without SAVE) must match bit-for-bit —
the paper's *software transparency* requirement.

Arithmetic notes:

* All FP32 operations use ``numpy.float32``; a MAC is computed as a
  float32 multiply followed by a float32 add (two roundings).  Real VFMA
  hardware fuses the two with a single rounding; since the pipeline model
  uses the same two-rounding helper, reference and pipeline agree
  bit-for-bit, which is the property we test.
* VDPBF16 performs two *chained* MACs per accumulator lane in the lane
  order ``2i`` then ``2i+1`` (Fig. 2) — the ordering that SAVE's
  mixed-precision horizontal compression must preserve.
"""

from __future__ import annotations

from typing import Optional
from collections.abc import Iterable

import numpy as np

from repro.isa.datatypes import BF16_LANES, FP32_LANES
from repro.isa.registers import ArchState
from repro.isa.uops import MemOperand, Operand, RegOperand, Uop, UopKind


def mac(accum: np.float32, a: np.float32, b: np.float32) -> np.float32:
    """One scalar FP32 multiply-accumulate with float32 rounding.

    Shared by the reference executor and the pipeline's VPU model so the
    two produce identical bit patterns.
    """
    return np.float32(accum + np.float32(a * b))


class ReferenceExecutor:
    """In-order functional executor over an architectural state."""

    def __init__(self, state: Optional[ArchState] = None) -> None:
        self.state = state if state is not None else ArchState()

    # ------------------------------------------------------------------
    # Operand fetch
    # ------------------------------------------------------------------

    def fetch_fp32_operand(self, operand: Operand) -> np.ndarray:
        """Materialise a 16-lane FP32 vector from a register or memory."""
        if isinstance(operand, RegOperand):
            value = self.state.read_vreg(operand.reg)
            if value.shape[0] != FP32_LANES:
                raise ValueError("FP32 operand register holds a BF16 payload")
            return value
        memory = self.state.memory
        if operand.broadcast:
            scalar = memory.read(operand.addr)
            return np.full(FP32_LANES, scalar, dtype=np.float32)
        return memory.read_vector(operand.addr, FP32_LANES, operand.element_bytes)

    def fetch_bf16_operand(self, operand: Operand) -> np.ndarray:
        """Materialise a 32-lane BF16 vector (as BF16-exact float32)."""
        if isinstance(operand, RegOperand):
            value = self.state.read_vreg(operand.reg)
            if value.shape[0] != BF16_LANES:
                raise ValueError("BF16 operand register holds an FP32 payload")
            return value
        memory = self.state.memory
        if operand.broadcast:
            # m32bcst: one 32-bit element (= a pair of BF16 lanes)
            # replicated across all accumulator-lane groups.
            pair = [memory.read(operand.addr), memory.read(operand.addr + 2)]
            return np.tile(np.array(pair, dtype=np.float32), FP32_LANES)
        return memory.read_vector(operand.addr, BF16_LANES, operand.element_bytes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, uop: Uop) -> None:
        """Execute one µop, updating the architectural state."""
        if uop.kind == UopKind.VFMA:
            self._execute_vfma(uop)
        elif uop.kind == UopKind.VDPBF16:
            self._execute_vdpbf16(uop)
        elif uop.kind == UopKind.VLOAD:
            self._execute_vload(uop)
        elif uop.kind == UopKind.VBCAST:
            self._execute_vbcast(uop)
        elif uop.kind == UopKind.VSTORE:
            self._execute_vstore(uop)
        elif uop.kind == UopKind.KMOV:
            self.state.write_kreg(uop.dst, uop.imm)
        elif uop.kind == UopKind.VZERO:
            self.state.write_vreg(uop.dst, np.zeros(FP32_LANES, dtype=np.float32))
        elif uop.kind == UopKind.SCALAR:
            pass
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown µop kind {uop.kind}")

    def run(self, trace: Iterable[Uop]) -> ArchState:
        """Execute an entire trace in program order."""
        for uop in trace:
            self.execute(uop)
        return self.state

    # ------------------------------------------------------------------
    # Per-kind helpers
    # ------------------------------------------------------------------

    def _write_mask(self, uop: Uop) -> int:
        if uop.wmask is None:
            return (1 << FP32_LANES) - 1
        return self.state.read_kreg(uop.wmask)

    def _execute_vfma(self, uop: Uop) -> None:
        accum = self.state.read_vreg(uop.accum)
        a = self.fetch_fp32_operand(uop.src_a)
        b = self.fetch_fp32_operand(uop.src_b)
        mask = self._write_mask(uop)
        result = accum.copy()
        for lane in range(FP32_LANES):
            if mask & (1 << lane):
                result[lane] = mac(accum[lane], a[lane], b[lane])
        self.state.write_vreg(uop.dst, result)

    def _execute_vdpbf16(self, uop: Uop) -> None:
        accum = self.state.read_vreg(uop.accum)
        if accum.shape[0] != FP32_LANES:
            raise ValueError("VDPBF16 accumulator must hold FP32 lanes")
        a = self.fetch_bf16_operand(uop.src_a)
        b = self.fetch_bf16_operand(uop.src_b)
        mask = self._write_mask(uop)
        result = accum.copy()
        for lane in range(FP32_LANES):
            if not mask & (1 << lane):
                continue
            value = result[lane]
            value = mac(value, a[2 * lane], b[2 * lane])
            value = mac(value, a[2 * lane + 1], b[2 * lane + 1])
            result[lane] = value
        self.state.write_vreg(uop.dst, result)

    def _execute_vload(self, uop: Uop) -> None:
        operand: MemOperand = uop.src_a
        lanes = BF16_LANES if operand.bf16 else FP32_LANES
        value = self.state.memory.read_vector(operand.addr, lanes, operand.element_bytes)
        self.state.write_vreg(uop.dst, value)

    def _execute_vbcast(self, uop: Uop) -> None:
        operand: MemOperand = uop.src_a
        if operand.bf16:
            pair = [
                self.state.memory.read(operand.addr),
                self.state.memory.read(operand.addr + 2),
            ]
            value = np.tile(np.array(pair, dtype=np.float32), FP32_LANES)
        else:
            scalar = self.state.memory.read(operand.addr)
            value = np.full(FP32_LANES, scalar, dtype=np.float32)
        self.state.write_vreg(uop.dst, value)

    def _execute_vstore(self, uop: Uop) -> None:
        source: RegOperand = uop.src_a
        dest: MemOperand = uop.src_b
        value = self.state.vregs[source.reg]
        self.state.memory.write_vector(dest.addr, value, dest.element_bytes)


def execute_trace(trace: Iterable[Uop], state: Optional[ArchState] = None) -> ArchState:
    """Run ``trace`` on a fresh (or provided) architectural state."""
    executor = ReferenceExecutor(state)
    return executor.run(trace)
