"""µop record types for the modeled vector ISA.

A *trace* is a list of :class:`Uop` in program order.  Both the in-order
reference executor and the out-of-order pipeline consume the same traces,
which is what lets the test suite check SAVE's software transparency
bit-for-bit.

µop kinds (Sec. II-B of the paper):

* ``VFMA`` — FP32 fused multiply-add, ``C[i] += A[i] * B[i]`` over 16
  lanes, optionally predicated by an AVX-512 write mask.  One
  multiplicand may be a memory operand, either a full vector or an
  *embedded broadcast* (scalar broadcast to all lanes).
* ``VDPBF16`` — mixed-precision dot product (``VDPBF16PS``): multiplicand
  registers hold 32 BF16 lanes, the accumulator holds 16 FP32 lanes, and
  each accumulator lane receives the dot product of the corresponding
  2-lane BF16 sub-vectors, computed as two chained MACs.
* ``VLOAD`` / ``VSTORE`` — full-vector loads and stores.
* ``VBCAST`` — *explicit* broadcast: load a scalar from memory and
  replicate it across all lanes of a vector register.
* ``KMOV`` — load an immediate into a mask register.
* ``VZERO`` — zero a vector register (accumulator initialisation).
* ``SCALAR`` — address-arithmetic / loop-control placeholder that only
  consumes front-end and scalar-port bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional, Union


class UopKind(Enum):
    """Discriminator for µop record types."""

    VFMA = auto()
    VDPBF16 = auto()
    VLOAD = auto()
    VSTORE = auto()
    VBCAST = auto()
    KMOV = auto()
    VZERO = auto()
    SCALAR = auto()


@dataclass(frozen=True)
class RegOperand:
    """A vector-register source operand."""

    reg: int

    def __repr__(self) -> str:
        return f"zmm{self.reg}"


@dataclass(frozen=True)
class MemOperand:
    """A memory source operand.

    Args:
        addr: byte address of the first (or only) element.
        broadcast: if True this is an embedded broadcast — a scalar at
            ``addr`` replicated across all lanes.
        bf16: if True elements are BF16 (2 bytes), else FP32 (4 bytes).
    """

    addr: int
    broadcast: bool = False
    bf16: bool = False

    @property
    def element_bytes(self) -> int:
        """Size in bytes of one element of this operand."""
        return 2 if self.bf16 else 4

    def __repr__(self) -> str:
        suffix = "{1toN}" if self.broadcast else ""
        return f"[0x{self.addr:x}]{suffix}"


Operand = Union[RegOperand, MemOperand]


@dataclass
class Uop:
    """One micro-operation in a trace.

    Field usage by kind:

    ======== ======== ========= ========= ========= ========
    kind     dst      accum     src_a     src_b     wmask
    ======== ======== ========= ========= ========= ========
    VFMA     vreg     vreg      operand   operand   optional
    VDPBF16  vreg     vreg      operand   operand   optional
    VLOAD    vreg     —         mem       —         —
    VSTORE   —        —         reg(src)  mem(dst)  —
    VBCAST   vreg     —         mem       —         —
    KMOV     kreg     —         imm       —         —
    VZERO    vreg     —         —         —         —
    SCALAR   —        —         —         —         —
    ======== ======== ========= ========= ========= ========
    """

    kind: UopKind
    dst: Optional[int] = None
    accum: Optional[int] = None
    src_a: Optional[Operand] = None
    src_b: Optional[Operand] = None
    wmask: Optional[int] = None
    imm: Optional[int] = None
    bf16: bool = False
    #: Free-form annotation used by experiments (e.g. GEMM (i, j) tile).
    tag: Optional[str] = None

    def is_fma(self) -> bool:
        """True for both FP32 VFMA and mixed-precision VDPBF16 µops."""
        return self.kind in (UopKind.VFMA, UopKind.VDPBF16)

    def register_sources(self) -> list[int]:
        """Vector registers read by this µop (excluding mask registers)."""
        regs: list[int] = []
        if self.is_fma():
            if self.accum is not None:
                regs.append(self.accum)
            for operand in (self.src_a, self.src_b):
                if isinstance(operand, RegOperand):
                    regs.append(operand.reg)
        elif self.kind == UopKind.VSTORE and isinstance(self.src_a, RegOperand):
            regs.append(self.src_a.reg)
        return regs

    def memory_operand(self) -> Optional[MemOperand]:
        """The memory operand of this µop, if any."""
        for operand in (self.src_a, self.src_b):
            if isinstance(operand, MemOperand):
                return operand
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind.name.lower()]
        if self.dst is not None:
            prefix = "k" if self.kind == UopKind.KMOV else "zmm"
            parts.append(f"{prefix}{self.dst}")
        if self.accum is not None:
            parts.append(f"acc=zmm{self.accum}")
        if self.src_a is not None:
            parts.append(f"a={self.src_a!r}")
        if self.src_b is not None:
            parts.append(f"b={self.src_b!r}")
        if self.wmask is not None:
            parts.append(f"{{k{self.wmask}}}")
        return " ".join(parts)


def vfma(
    dst: int,
    src_a: Operand,
    src_b: Operand,
    wmask: Optional[int] = None,
    tag: Optional[str] = None,
) -> Uop:
    """Build an FP32 VFMA µop ``dst[i] += a[i] * b[i]``.

    ``dst`` doubles as the accumulator source, matching the x86
    three-operand form where the destination is also an input.
    """
    return Uop(
        kind=UopKind.VFMA,
        dst=dst,
        accum=dst,
        src_a=src_a,
        src_b=src_b,
        wmask=wmask,
        tag=tag,
    )


def vdpbf16(
    dst: int,
    src_a: Operand,
    src_b: Operand,
    wmask: Optional[int] = None,
    tag: Optional[str] = None,
) -> Uop:
    """Build a mixed-precision VDPBF16PS µop.

    ``dst[i] += a[2i] * b[2i] + a[2i+1] * b[2i+1]`` with BF16
    multiplicands and an FP32 accumulator, computed as two chained MACs.
    """
    return Uop(
        kind=UopKind.VDPBF16,
        dst=dst,
        accum=dst,
        src_a=src_a,
        src_b=src_b,
        wmask=wmask,
        bf16=True,
        tag=tag,
    )


def vload(dst: int, addr: int, bf16: bool = False, tag: Optional[str] = None) -> Uop:
    """Build a full-vector load of register ``dst`` from byte ``addr``."""
    return Uop(
        kind=UopKind.VLOAD,
        dst=dst,
        src_a=MemOperand(addr, broadcast=False, bf16=bf16),
        bf16=bf16,
        tag=tag,
    )


def vbcast(dst: int, addr: int, bf16: bool = False, tag: Optional[str] = None) -> Uop:
    """Build an explicit broadcast load: scalar at ``addr`` to all lanes."""
    return Uop(
        kind=UopKind.VBCAST,
        dst=dst,
        src_a=MemOperand(addr, broadcast=True, bf16=bf16),
        bf16=bf16,
        tag=tag,
    )


def vstore(src: int, addr: int, bf16: bool = False, tag: Optional[str] = None) -> Uop:
    """Build a full-vector store of register ``src`` to byte ``addr``."""
    return Uop(
        kind=UopKind.VSTORE,
        src_a=RegOperand(src),
        src_b=MemOperand(addr, broadcast=False, bf16=bf16),
        bf16=bf16,
        tag=tag,
    )


def kmov(dst: int, imm: int) -> Uop:
    """Build a mask-register write ``k[dst] = imm``."""
    return Uop(kind=UopKind.KMOV, dst=dst, imm=imm)


def vzero(dst: int) -> Uop:
    """Build a vector-register zeroing µop (accumulator init)."""
    return Uop(kind=UopKind.VZERO, dst=dst)


def scalar_op(tag: Optional[str] = None) -> Uop:
    """Build a scalar/loop-overhead µop (front-end bandwidth only)."""
    return Uop(kind=UopKind.SCALAR, tag=tag)
