"""Floating-point data types used by the modeled vector ISA.

The ISA operates on 512-bit vectors holding either 16 FP32 lanes or
32 BF16 lanes.  BF16 values are represented in Python as ``numpy.float32``
values whose low 16 mantissa bits are zero, i.e. values that are exactly
representable in BF16.  :func:`bf16_round` performs IEEE-style
round-to-nearest-even truncation from FP32 to BF16 and is used both when
generating BF16 operands and inside the VDPBF16 semantics.
"""

from __future__ import annotations

import numpy as np

#: Number of FP32 lanes in one 512-bit vector register.
FP32_LANES = 16

#: Number of BF16 lanes in one 512-bit vector register.
BF16_LANES = 32

#: Bytes per 512-bit vector register / per cache line.
VECTOR_BYTES = 64

#: Bytes per FP32 element.
FP32_BYTES = 4

#: Bytes per BF16 element.
BF16_BYTES = 2


def bf16_round(values: np.ndarray) -> np.ndarray:
    """Round FP32 values to the nearest BF16-representable FP32 values.

    Uses round-to-nearest-even on the upper 16 bits of the FP32 encoding,
    the same rounding used by hardware FP32→BF16 converters.

    Args:
        values: array of ``float32`` (any shape).

    Returns:
        A new ``float32`` array of the same shape where every element is
        exactly representable in BF16.
    """
    arr = np.ascontiguousarray(values, dtype=np.float32)
    bits = arr.view(np.uint32)
    # Round to nearest even: add 0x7FFF plus the LSB of the surviving part.
    rounded = bits + (0x7FFF + ((bits >> 16) & 1))
    out = (rounded & np.uint32(0xFFFF0000)).view(np.float32).copy()
    # NaN inputs must stay NaN: the bias add may overflow the exponent.
    nan_mask = np.isnan(arr)
    if nan_mask.any():
        out[nan_mask] = np.float32("nan")
    return out.reshape(arr.shape)


def is_bf16_representable(values: np.ndarray) -> bool:
    """Return True if every element of ``values`` is exact in BF16."""
    arr = np.ascontiguousarray(values, dtype=np.float32)
    bits = arr.view(np.uint32)
    nan_mask = np.isnan(arr)
    exact = (bits & 0xFFFF) == 0
    return bool(np.all(exact | nan_mask))


def fp32_zeros(n: int = FP32_LANES) -> np.ndarray:
    """Return an ``n``-lane FP32 zero vector."""
    return np.zeros(n, dtype=np.float32)
