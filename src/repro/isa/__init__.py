"""AVX-512-like vector ISA substrate.

This package defines the µop-level instruction model consumed by both the
in-order reference executor (:mod:`repro.isa.semantics`) and the
cycle-level out-of-order pipeline (:mod:`repro.core.pipeline`).

The modeled ISA mirrors the subset of AVX-512 that DNNL-style GEMM
kernels use (Sec. II-B of the paper):

* 512-bit vector registers — 16 FP32 lanes or 32 BF16 lanes,
* ``VFMA`` — FP32 fused multiply-add, per-lane ``C[i] += A[i] * B[i]``,
* ``VDPBF16`` — the mixed-precision dot-product ``VDPBF16PS``: two BF16
  multiplicand lanes per FP32 accumulator lane, computed as two chained
  MACs (Fig. 2 of the paper),
* vector loads/stores, *embedded* broadcast memory operands and
  *explicit* broadcast loads, and
* AVX-512 write masks for predication (used for pruned weights).
"""

from repro.isa.datatypes import (
    BF16_LANES,
    FP32_LANES,
    VECTOR_BYTES,
    bf16_round,
    is_bf16_representable,
)
from repro.isa.registers import (
    NUM_MASK_REGS,
    NUM_VREGS,
    ArchState,
    Memory,
)
from repro.isa.uops import (
    MemOperand,
    RegOperand,
    Uop,
    UopKind,
    kmov,
    scalar_op,
    vbcast,
    vdpbf16,
    vfma,
    vload,
    vstore,
    vzero,
)
from repro.isa.semantics import ReferenceExecutor, execute_trace

__all__ = [
    "BF16_LANES",
    "FP32_LANES",
    "VECTOR_BYTES",
    "NUM_MASK_REGS",
    "NUM_VREGS",
    "ArchState",
    "Memory",
    "MemOperand",
    "RegOperand",
    "ReferenceExecutor",
    "Uop",
    "UopKind",
    "bf16_round",
    "execute_trace",
    "is_bf16_representable",
    "kmov",
    "scalar_op",
    "vbcast",
    "vdpbf16",
    "vfma",
    "vload",
    "vstore",
    "vzero",
]
