"""Architectural register and memory state for the modeled ISA.

The modeled machine has the AVX-512 architectural register set that the
paper's GEMM kernels use: 32 vector registers (``zmm0``–``zmm31``) and
8 mask registers (``k0``–``k7``).  Memory is a flat element-addressable
store; addresses are byte addresses and values are FP32 (4 bytes) or BF16
(2 bytes, represented as BF16-exact ``float32``).
"""

from __future__ import annotations

from typing import Optional
from collections.abc import Iterable

import numpy as np

from repro.isa.datatypes import BF16_LANES, FP32_LANES, bf16_round

#: Number of architectural vector registers (AVX-512).
NUM_VREGS = 32

#: Number of architectural mask registers (AVX-512).
NUM_MASK_REGS = 8


class Memory:
    """Flat, element-granular memory.

    Values are stored per element address.  FP32 elements occupy 4 bytes
    and BF16 elements 2 bytes; the kernel generators always use aligned,
    non-overlapping element addresses so a simple ``dict`` suffices.
    Unwritten locations read as zero, which conveniently models
    zero-initialised accumulator buffers.
    """

    def __init__(self) -> None:
        self._data: dict[int, float] = {}

    def read(self, addr: int) -> np.float32:
        """Read one element at byte address ``addr``."""
        return np.float32(self._data.get(addr, 0.0))

    def write(self, addr: int, value: float) -> None:
        """Write one element at byte address ``addr``."""
        self._data[addr] = float(np.float32(value))

    def read_vector(self, addr: int, lanes: int, stride: int) -> np.ndarray:
        """Read ``lanes`` consecutive elements starting at ``addr``.

        Args:
            addr: byte address of lane 0.
            lanes: number of elements.
            stride: bytes between consecutive elements (4 for FP32,
                2 for BF16).
        """
        return np.array(
            [self._data.get(addr + i * stride, 0.0) for i in range(lanes)],
            dtype=np.float32,
        )

    def write_vector(self, addr: int, values: np.ndarray, stride: int) -> None:
        """Write a vector of elements starting at byte address ``addr``."""
        for i, value in enumerate(np.asarray(values, dtype=np.float32)):
            self._data[addr + i * stride] = float(value)

    def write_array(
        self, addr: int, values: Iterable[float], stride: int, bf16: bool = False
    ) -> None:
        """Bulk-initialise memory from an iterable of values.

        Args:
            addr: byte address of the first element.
            values: element values (row-major).
            stride: bytes per element.
            bf16: if True, round every value to BF16 before storing.
        """
        arr = np.asarray(list(values), dtype=np.float32)
        if bf16:
            arr = bf16_round(arr)
        for i, value in enumerate(arr):
            self._data[addr + i * stride] = float(value)

    def snapshot(self) -> dict[int, float]:
        """Return a copy of the backing store (for state comparison)."""
        return dict(self._data)

    def __len__(self) -> int:
        return len(self._data)


class ArchState:
    """Architectural state: vector registers, mask registers, memory.

    Vector registers always hold 16 FP32 lanes.  A register holding BF16
    data conceptually holds 32 BF16 lanes; the BF16 view is materialised
    by the µop semantics (see :mod:`repro.isa.semantics`), while the
    register file itself stores the raw 32-lane BF16 payload as a 32-wide
    ``float32`` array when written by a BF16 producer.  To keep the model
    simple, each register slot stores a numpy array of whatever width its
    last producer wrote (16 for FP32, 32 for BF16 payloads).
    """

    def __init__(self, memory: Optional[Memory] = None) -> None:
        self.vregs: dict[int, np.ndarray] = {
            i: np.zeros(FP32_LANES, dtype=np.float32) for i in range(NUM_VREGS)
        }
        self.kregs: dict[int, int] = {i: (1 << FP32_LANES) - 1 for i in range(NUM_MASK_REGS)}
        self.memory = memory if memory is not None else Memory()

    def read_vreg(self, reg: int) -> np.ndarray:
        """Return a copy of vector register ``reg``."""
        return self.vregs[reg].copy()

    def write_vreg(self, reg: int, value: np.ndarray) -> None:
        """Overwrite vector register ``reg``."""
        arr = np.asarray(value, dtype=np.float32)
        if arr.shape[0] not in (FP32_LANES, BF16_LANES):
            raise ValueError(f"vector register width must be 16 or 32, got {arr.shape[0]}")
        self.vregs[reg] = arr.copy()

    def read_kreg(self, reg: int) -> int:
        """Return mask register ``reg`` as an integer bitmask."""
        return self.kregs[reg]

    def write_kreg(self, reg: int, value: int) -> None:
        """Overwrite mask register ``reg``."""
        self.kregs[reg] = int(value)

    def registers_snapshot(self) -> dict[int, np.ndarray]:
        """Return a copy of all vector registers (for state comparison)."""
        return {reg: val.copy() for reg, val in self.vregs.items()}
