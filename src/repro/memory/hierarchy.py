"""The inclusive L1/L2/L3 + DRAM hierarchy of Table I.

The detailed pipeline simulates one core, so the hierarchy models that
core's private L1-D and L2 plus its view of the shared L3 (NUCA-sliced
across the mesh) and DRAM.  Multicore effects enter through the L3
capacity share and the DRAM fair-share bandwidth
(:mod:`repro.model.multicore`).

Inclusivity (Table I models Skylake's L3 as a 2.375 MB/core *inclusive*
cache): an L3 eviction back-invalidates L2 and L1; an L2 eviction
back-invalidates L1.  The B$ is invalidated alongside the L1.

Frequency domains: L1/L2 hit latencies are constant in *core cycles*
(they scale with the core clock); L3 and DRAM latencies are constant in
*nanoseconds* ("The core frequency affects L1 and L2 but not L3").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.address import CACHE_LINE_BYTES
from repro.memory.broadcast_cache import BroadcastCache
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.noc import MeshNoc


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies for the modeled hierarchy (Table I)."""

    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 5  # cycles, load-to-use
    l1_read_ports: int = 2

    l2_size: int = 1024 * 1024
    l2_ways: int = 16
    l2_latency: int = 14  # cycles

    l3_slice_size: int = 2_375 * 1024  # 2.375 MB per core (paper's stand-in)
    l3_ways: int = 19
    l3_latency_ns: float = 20.0
    l3_policy: str = "srrip"

    cores: int = 28

    def l3_capacity(self, sharing_cores: int = 1) -> int:
        """L3 capacity effectively available to one core.

        With all cores running the same kernel each gets roughly its
        slice; a single-core run can spill into the whole L3.
        """
        if sharing_cores <= 0:
            raise ValueError("sharing_cores must be positive")
        total = self.l3_slice_size * self.cores
        return max(total // sharing_cores, self.l3_slice_size)


@dataclass
class TrafficStats:
    """Bytes moved between levels (for roofline/bandwidth accounting)."""

    l1_to_core: int = 0
    l2_to_l1: int = 0
    l3_to_l2: int = 0
    dram_to_l3: int = 0
    stores: int = 0


class MemoryHierarchy:
    """One core's load/store path through L1 → L2 → L3 → DRAM."""

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        core_id: int = 0,
        sharing_cores: int = 1,
        freq_ghz: float = 1.7,
        noc: Optional[MeshNoc] = None,
        dram: Optional[DramModel] = None,
        broadcast_cache: Optional[BroadcastCache] = None,
    ) -> None:
        self.config = config if config is not None else HierarchyConfig()
        self.core_id = core_id
        self.sharing_cores = sharing_cores
        self.freq_ghz = freq_ghz
        self.noc = noc if noc is not None else MeshNoc()
        self.dram = dram if dram is not None else DramModel()
        self.broadcast_cache = broadcast_cache

        cfg = self.config
        self.l1 = SetAssociativeCache("L1-D", cfg.l1_size, cfg.l1_ways, "lru")
        self.l2 = SetAssociativeCache("L2", cfg.l2_size, cfg.l2_ways, "lru")
        self.l3 = SetAssociativeCache(
            "L3", cfg.l3_capacity(sharing_cores), cfg.l3_ways, cfg.l3_policy
        )
        # Inclusive back-invalidation chains.
        self.l3.on_evict = self._back_invalidate_from_l3
        self.l2.on_evict = self._back_invalidate_from_l2
        self.traffic = TrafficStats()
        self._noc_round_trip = self.noc.average_round_trip(core_id)

    # ------------------------------------------------------------------

    def _back_invalidate_from_l3(self, line_addr: int) -> None:
        self.l2.invalidate(line_addr)
        self._back_invalidate_from_l2(line_addr)

    def _back_invalidate_from_l2(self, line_addr: int) -> None:
        self.l1.invalidate(line_addr)
        if self.broadcast_cache is not None:
            self.broadcast_cache.invalidate(line_addr)

    # ------------------------------------------------------------------

    def _l3_latency_cycles(self) -> int:
        uncore_ns = self.config.l3_latency_ns + self._noc_round_trip / 2.0
        return round(uncore_ns * self.freq_ghz)

    def _dram_latency_cycles(self) -> int:
        total_ns = (
            self.config.l3_latency_ns
            + self._noc_round_trip / 2.0
            + self.dram.latency_ns
        )
        return round(total_ns * self.freq_ghz)

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access one byte address; returns the load-to-use latency.

        Fills all levels on the way back (inclusive hierarchy) and
        accounts line traffic between levels.
        """
        cfg = self.config
        line = CACHE_LINE_BYTES
        self.traffic.l1_to_core += line
        if is_write:
            self.traffic.stores += line

        if self.l1.access(addr).hit:
            return cfg.l1_latency

        self.traffic.l2_to_l1 += line
        if self.l2.access(addr).hit:
            return cfg.l2_latency

        self.traffic.l3_to_l2 += line
        if self.l3.access(addr).hit:
            return self._l3_latency_cycles()

        self.traffic.dram_to_l3 += line
        return self._dram_latency_cycles()

    def warm(self, addresses, level: str = "l3") -> None:
        """Pre-load lines into a level (the paper warms L3 with the
        previous operation's output before timing a kernel).

        Args:
            addresses: iterable of byte addresses.
            level: "l1", "l2" or "l3" — fills that level and all levels
                below it (inclusivity).
        """
        order = {"l1": (self.l3, self.l2, self.l1), "l2": (self.l3, self.l2), "l3": (self.l3,)}
        try:
            caches = order[level]
        except KeyError:
            raise ValueError(f"unknown level {level!r}") from None
        for addr in addresses:
            for cache in caches:
                cache.access(addr)
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero all counters (post-warm-up)."""
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.l3.reset_stats()
        self.traffic = TrafficStats()

    def check_inclusive(self) -> bool:
        """Invariant: every L1/L2 line is also present in L3."""
        l3_lines = self.l3.resident_lines()
        return self.l1.resident_lines() <= l3_lines and (
            self.l2.resident_lines() <= l3_lines
        )
