"""Replacement policies for set-associative caches.

Two policies from Table I: LRU (L1-D, L2) and SRRIP (L3).  Policies are
stateful per cache *set*; the cache owns one policy instance per set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class ReplacementPolicy(ABC):
    """Victim selection and recency bookkeeping for one cache set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways

    @abstractmethod
    def on_hit(self, way: int) -> None:
        """Record a hit in ``way``."""

    @abstractmethod
    def on_fill(self, way: int) -> None:
        """Record a fill (miss insertion) into ``way``."""

    @abstractmethod
    def victim(self, occupied: list[bool]) -> int:
        """Choose a way to evict; prefer an unoccupied way if any."""


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used with an explicit recency stack."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Index 0 = most recently used.
        self._stack: list[int] = list(range(ways))

    def _touch(self, way: int) -> None:
        self._stack.remove(way)
        self._stack.insert(0, way)

    def on_hit(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def victim(self, occupied: list[bool]) -> int:
        for way in range(self.ways):
            if not occupied[way]:
                return way
        return self._stack[-1]

    def recency_order(self) -> list[int]:
        """MRU→LRU way order (exposed for invariants testing)."""
        return list(self._stack)


class SrripPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (2-bit RRPV).

    Fills insert with RRPV = 2 ("long re-reference"), hits promote to
    RRPV = 0, and the victim is the first way with RRPV = 3, aging all
    ways until one appears — the standard SRRIP-HP formulation used by
    Skylake-class L3s.
    """

    MAX_RRPV = 3

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._rrpv: list[int] = [self.MAX_RRPV] * ways

    def on_hit(self, way: int) -> None:
        self._rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        self._rrpv[way] = self.MAX_RRPV - 1

    def victim(self, occupied: list[bool]) -> int:
        for way in range(self.ways):
            if not occupied[way]:
                return way
        while True:
            for way in range(self.ways):
                if self._rrpv[way] == self.MAX_RRPV:
                    return way
            for way in range(self.ways):
                self._rrpv[way] += 1

    def rrpv_values(self) -> list[int]:
        """Current RRPV per way (exposed for invariants testing)."""
        return list(self._rrpv)


_POLICIES = {"lru": LruPolicy, "srrip": SrripPolicy}


def policy_class(name: str) -> type:
    """Resolve a policy name (Table I) to its class."""
    try:
        return _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Factory keyed by the policy names used in Table I."""
    return policy_class(name)(ways)
