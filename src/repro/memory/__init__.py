"""Memory-subsystem substrate.

Models the memory side of Table I:

* 32 KB/core private 8-way L1-D with LRU,
* 1 MB/core private inclusive 16-way L2 with LRU,
* 2.375 MB/core shared inclusive 19-way L3 with SRRIP, NUCA-sliced
  across a 2D-mesh NoC with XY routing and 2-cycle hops,
* 119.2 GB/s, 6-channel, 50 ns DRAM,
* and SAVE's 32-entry direct-mapped broadcast cache (B$) in both the
  *data* and *mask* variants (Sec. IV-A).
"""

from repro.memory.address import CACHE_LINE_BYTES, Region, line_address
from repro.memory.broadcast_cache import (
    BroadcastCache,
    BroadcastCacheKind,
    BroadcastResult,
)
from repro.memory.cache import AccessResult, SetAssociativeCache
from repro.memory.dram import DramModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.noc import MeshNoc
from repro.memory.replacement import LruPolicy, ReplacementPolicy, SrripPolicy

__all__ = [
    "AccessResult",
    "BroadcastCache",
    "BroadcastCacheKind",
    "BroadcastResult",
    "CACHE_LINE_BYTES",
    "DramModel",
    "HierarchyConfig",
    "LruPolicy",
    "MemoryHierarchy",
    "MeshNoc",
    "Region",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SrripPolicy",
    "line_address",
]
