"""2D-mesh network-on-chip with XY routing (Table I).

The 28 cores tile a mesh; each core's tile also homes one NUCA slice of
the shared L3.  A request from core *c* to the L3 slice homing line *l*
crosses the Manhattan distance between the two tiles at 2 cycles per
hop, there and back.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeshNoc:
    """An ``width × height`` mesh with XY dimension-ordered routing.

    Args:
        width: tiles per row.
        height: rows.
        hop_cycles: cycles per hop (Table I: 2).
    """

    width: int = 7
    height: int = 4
    hop_cycles: int = 2

    @property
    def num_tiles(self) -> int:
        """Total number of tiles (= cores = L3 slices)."""
        return self.width * self.height

    def coordinates(self, tile: int) -> tuple[int, int]:
        """(x, y) position of a tile, row-major."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} outside {self.num_tiles}-tile mesh")
        return tile % self.width, tile // self.width

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles under XY routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """One-way traversal latency in uncore cycles."""
        return self.hops(src, dst) * self.hop_cycles

    def round_trip_latency(self, src: int, dst: int) -> int:
        """Request + response latency in uncore cycles."""
        return 2 * self.latency(src, dst)

    def home_slice(self, line_addr: int) -> int:
        """NUCA home tile for a line (address-hashed distribution)."""
        line = line_addr // 64
        # Multiplicative hash spreads sequential lines across slices.
        return (line * 0x9E3779B1 >> 16) % self.num_tiles

    def average_round_trip(self, src: int) -> float:
        """Mean round-trip latency from ``src`` to a uniform random slice."""
        total = sum(self.round_trip_latency(src, dst) for dst in range(self.num_tiles))
        return total / self.num_tiles
