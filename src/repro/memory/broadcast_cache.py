"""SAVE's broadcast cache (B$), Sec. IV-A of the paper.

A small read-only cache that exclusively serves *broadcast* load
requests, exploiting the spatial locality of the scalars GEMM broadcasts
from matrix A.  Two designs:

* ``DATA`` — each entry holds the broadcast-relevant values of one L1-D
  line.  Any hit is served without touching the L1-D.
* ``MASK`` — each entry holds a 16-bit is-zero mask of the line
  (assuming 64 B lines / 4 B elements).  A hit on a *zero* element is
  served by materialising zeros; a hit on a *non-zero* element still
  reads the data from the L1-D.

Both designs are 32-entry direct-mapped with 4 read ports in the paper's
configuration.  The B$ is kept coherent with the L1-D via
:meth:`BroadcastCache.invalidate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from collections.abc import Callable

from repro.memory.address import CACHE_LINE_BYTES


class BroadcastCacheKind(Enum):
    """B$ design variants (plus NONE for the ablation baseline)."""

    NONE = auto()
    DATA = auto()
    MASK = auto()


@dataclass
class BroadcastResult:
    """Outcome of one broadcast access.

    Attributes:
        hit: the B$ had the line.
        l1_access: this access consumed an L1-D read port/lookup.
        value_is_zero: the broadcasted element is zero (drives BS
            skipping downstream).
    """

    hit: bool
    l1_access: bool
    value_is_zero: bool


@dataclass
class BroadcastCacheStats:
    """Counters for B$ behaviour."""

    hits: int = 0
    misses: int = 0
    l1_reads_saved: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BroadcastCache:
    """Direct-mapped broadcast cache.

    Args:
        kind: B$ design (``NONE`` models a machine without a B$; every
            access then costs an L1-D read).
        entries: number of lines (paper: 32, one per architectural
            vector register).
        ports: read ports per cycle (paper: 4) — enforced by the
            pipeline's issue logic, recorded here for configuration.
        value_reader: callable mapping a byte address to the element
            value; used to evaluate zero-ness (the functional memory).
    """

    def __init__(
        self,
        kind: BroadcastCacheKind,
        value_reader: Callable[[int], float],
        entries: int = 32,
        ports: int = 4,
    ) -> None:
        if entries <= 0 or ports <= 0:
            raise ValueError("entries and ports must be positive")
        self.kind = kind
        self.entries = entries
        self.ports = ports
        self._value_reader = value_reader
        self._tags: dict[int, int] = {}  # slot -> line address
        self.stats = BroadcastCacheStats()

    def _slot(self, line_addr: int) -> int:
        return (line_addr // CACHE_LINE_BYTES) % self.entries

    def _is_zero(self, addr: int) -> bool:
        # SAVE's zero detection is an exact bit test on the operand
        # (Sec. III): 0.0 is sparse, 1e-30 is not.  A tolerance here
        # would change which lanes are "effectual".
        return float(self._value_reader(addr)) == 0.0  # repro: no-check[no-float-eq]

    def access(self, addr: int) -> BroadcastResult:
        """Serve a broadcast load of the element at byte ``addr``."""
        zero = self._is_zero(addr)
        if self.kind == BroadcastCacheKind.NONE:
            return BroadcastResult(hit=False, l1_access=True, value_is_zero=zero)

        line_addr = addr & ~(CACHE_LINE_BYTES - 1)
        slot = self._slot(line_addr)
        if self._tags.get(slot) == line_addr:
            self.stats.hits += 1
            if self.kind == BroadcastCacheKind.DATA:
                self.stats.l1_reads_saved += 1
                return BroadcastResult(hit=True, l1_access=False, value_is_zero=zero)
            # MASK design: only zero broadcasts skip the L1-D read.
            if zero:
                self.stats.l1_reads_saved += 1
                return BroadcastResult(hit=True, l1_access=False, value_is_zero=True)
            return BroadcastResult(hit=True, l1_access=True, value_is_zero=False)

        # Miss: fetch the line from the L1-D and install it.
        self.stats.misses += 1
        self._tags[slot] = line_addr
        return BroadcastResult(hit=False, l1_access=True, value_is_zero=zero)

    def invalidate(self, line_addr: int) -> bool:
        """Coherence: drop the entry for ``line_addr`` if present."""
        line_addr &= ~(CACHE_LINE_BYTES - 1)
        slot = self._slot(line_addr)
        if self._tags.get(slot) == line_addr:
            del self._tags[slot]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop all entries (context switch / kernel boundary)."""
        self._tags.clear()

    def storage_bits(self, fp32_and_mixed: bool = True) -> int:
        """Tag + payload storage in bits (Table II accounting).

        Data design: 46-bit line tag + 64 B data per entry.
        Mask design: 46-bit tag + 16-bit mask (FP32-only) or 32-bit mask
        (when BF16 lines of 32 elements must also be covered).
        """
        tag_bits = 46
        if self.kind == BroadcastCacheKind.DATA:
            payload = CACHE_LINE_BYTES * 8
        elif self.kind == BroadcastCacheKind.MASK:
            payload = 32 if fp32_and_mixed else 16
        else:
            return 0
        return self.entries * (tag_bits + payload)
