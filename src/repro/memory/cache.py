"""A generic set-associative cache with pluggable replacement.

Used for L1-D, L2 and L3.  The cache tracks *presence* (tags), not data
— the functional data lives in :class:`repro.isa.registers.Memory`; the
cache model only answers hit/miss and accounts traffic, which is all the
timing model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
from collections.abc import Callable

from repro.memory.address import CACHE_LINE_BYTES
from repro.memory.replacement import ReplacementPolicy, policy_class


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted_line: Optional[int] = None


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Tag-only set-associative cache.

    Args:
        name: label for stats/debugging.
        size_bytes: total capacity.
        ways: associativity.
        policy: replacement policy name ("lru" or "srrip").
        line_bytes: cache line size.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        policy: str = "lru",
        line_bytes: int = CACHE_LINE_BYTES,
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._policy_name = policy
        self._policy_cls = policy_class(policy)
        # Sets are materialised lazily on first touch: a kernel trace
        # visits a tiny fraction of an L3's sets, and eager allocation
        # dominated simulator construction time.
        self._tags: dict[int, list[Optional[int]]] = {}
        self._policies: dict[int, ReplacementPolicy] = {}
        self.stats = CacheStats()
        #: Called with the evicted line address on every eviction
        #: (used for inclusive back-invalidation).
        self.on_evict: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def _set_tags(self, set_idx: int) -> list[Optional[int]]:
        tags = self._tags.get(set_idx)
        if tags is None:
            tags = self._tags[set_idx] = [None] * self.ways
        return tags

    def _set_policy(self, set_idx: int) -> ReplacementPolicy:
        policy = self._policies.get(set_idx)
        if policy is None:
            policy = self._policies[set_idx] = self._policy_cls(self.ways)
        return policy

    def _find_way(self, line: int) -> Optional[int]:
        tags = self._tags.get(self._set_index(line))
        if tags is None:
            return None
        for way, tag in enumerate(tags):
            if tag == line:
                return way
        return None

    # ------------------------------------------------------------------

    def lookup(self, addr: int) -> bool:
        """Non-mutating presence check for byte address ``addr``."""
        return self._find_way(addr // self.line_bytes) is not None

    def access(self, addr: int) -> AccessResult:
        """Access byte ``addr``: update recency on hit, fill on miss.

        Returns the hit/miss outcome plus the evicted line address (if
        the fill displaced a valid line).
        """
        line = addr // self.line_bytes
        set_idx = self._set_index(line)
        policy = self._set_policy(set_idx)
        way = self._find_way(line)
        if way is not None:
            policy.on_hit(way)
            self.stats.hits += 1
            return AccessResult(hit=True)

        self.stats.misses += 1
        tags = self._set_tags(set_idx)
        occupied = [tag is not None for tag in tags]
        victim_way = policy.victim(occupied)
        evicted = tags[victim_way]
        evicted_addr: Optional[int] = None
        if evicted is not None:
            self.stats.evictions += 1
            evicted_addr = evicted * self.line_bytes
            if self.on_evict is not None:
                self.on_evict(evicted_addr)
        tags[victim_way] = line
        policy.on_fill(victim_way)
        return AccessResult(hit=False, evicted_line=evicted_addr)

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; True if it was present."""
        line = addr // self.line_bytes
        way = self._find_way(line)
        if way is None:
            return False
        self._tags[self._set_index(line)][way] = None
        self.stats.invalidations += 1
        return True

    def resident_lines(self) -> set[int]:
        """Set of line addresses currently cached (for invariants)."""
        lines: set[int] = set()
        for tags in self._tags.values():
            for tag in tags:
                if tag is not None:
                    lines.add(tag * self.line_bytes)
        return lines

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after cache warm-up)."""
        self.stats = CacheStats()

    def clone_empty(self) -> SetAssociativeCache:
        """A fresh cache with the same geometry."""
        return SetAssociativeCache(
            self.name, self.size_bytes, self.ways, self._policy_name, self.line_bytes
        )
