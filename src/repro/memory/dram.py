"""DRAM bandwidth/latency model (Table I: 119.2 GB/s, 6 channels, 50 ns).

The model answers two questions:

* the *unloaded* access latency in core cycles at a given frequency, and
* the *effective* per-core bandwidth when ``active_cores`` stream
  concurrently, with a simple queueing-derived latency inflation as
  demand approaches the channel limit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramModel:
    """Aggregate DRAM model shared by all cores.

    Args:
        bandwidth_gbps: peak aggregate bandwidth in GB/s.
        channels: number of memory channels.
        latency_ns: unloaded access latency.
    """

    bandwidth_gbps: float = 119.2
    channels: int = 6
    latency_ns: float = 50.0

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Peak bandwidth in bytes/ns."""
        return self.bandwidth_gbps  # 1 GB/s == 1 byte/ns

    def latency_cycles(self, freq_ghz: float) -> int:
        """Unloaded latency in core cycles at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        return round(self.latency_ns * freq_ghz)

    def per_core_bandwidth(self, active_cores: int) -> float:
        """Fair-share bandwidth per core in bytes/ns."""
        if active_cores <= 0:
            raise ValueError("active_cores must be positive")
        return self.bandwidth_bytes_per_ns / active_cores

    def effective_latency_ns(self, demand_bytes_per_ns: float) -> float:
        """Loaded latency under aggregate demand (M/D/1-style inflation).

        Latency grows as ``1 / (1 - utilisation)``, capped at 10x the
        unloaded latency to keep the model bounded when a workload is
        fully bandwidth-saturated.
        """
        if demand_bytes_per_ns < 0:
            raise ValueError("demand must be non-negative")
        utilisation = min(demand_bytes_per_ns / self.bandwidth_bytes_per_ns, 0.999)
        inflation = 1.0 / (1.0 - utilisation)
        return self.latency_ns * min(inflation, 10.0)

    def streaming_time_ns(self, total_bytes: float, active_cores: int = 1) -> float:
        """Time to stream ``total_bytes`` from one core's fair share."""
        return total_bytes / self.per_core_bandwidth(active_cores)
