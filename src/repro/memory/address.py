"""Address-space helpers shared by the kernel generators and caches."""

from __future__ import annotations

from dataclasses import dataclass

#: Cache line size in bytes (64 B everywhere in the modeled machine).
CACHE_LINE_BYTES = 64


def line_address(addr: int) -> int:
    """Return the line-aligned address containing byte ``addr``."""
    return addr & ~(CACHE_LINE_BYTES - 1)


def line_index(addr: int) -> int:
    """Return the line number containing byte ``addr``."""
    return addr // CACHE_LINE_BYTES


@dataclass(frozen=True)
class Region:
    """A named, line-aligned address region for one matrix buffer.

    The GEMM generators place the A, B and C matrices in disjoint
    regions so cache behaviour per matrix can be attributed in stats.
    """

    name: str
    base: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.base % CACHE_LINE_BYTES:
            raise ValueError(f"region {self.name} base must be line-aligned")
        if self.size_bytes <= 0:
            raise ValueError(f"region {self.name} must have positive size")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        """True if byte ``addr`` falls inside the region."""
        return self.base <= addr < self.end

    def element_address(self, index: int, element_bytes: int) -> int:
        """Byte address of the ``index``-th element in the region."""
        addr = self.base + index * element_bytes
        if addr >= self.end:
            raise IndexError(
                f"element {index} ({element_bytes}B) outside region {self.name}"
            )
        return addr


def make_regions(*specs: tuple[str, int], base: int = 0x1000_0000) -> dict[str, Region]:
    """Lay out disjoint line-aligned regions.

    Args:
        specs: ``(name, size_bytes)`` pairs laid out back-to-back with
            line-aligned, 4 KB-padded starts (padding avoids false
            set-index correlation between matrices).
        base: byte address of the first region.
    """
    regions: dict[str, Region] = {}
    cursor = base
    for name, size in specs:
        regions[name] = Region(name, cursor, size)
        cursor = (cursor + size + 4095) & ~4095
        cursor += 4096  # guard page between buffers
    return regions
