"""DVFS switching-overhead check (Sec. VII-A's footnote claim).

The Fig. 14 *dynamic* configuration switches VPU count and frequency
per kernel.  The paper neglects the switching overhead "because the
switching overhead of a typical DVFS manager is around ten
microseconds, while our configuration switches at tens of
milliseconds."  This module makes that claim checkable: given a dynamic
schedule (the per-kernel config choices and times), it counts actual
transitions and computes the overhead fraction a real DVFS manager
would add.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.model.estimator import ONE_VPU, TWO_VPUS, KernelEstimate


@dataclass(frozen=True)
class DvfsModel:
    """A DVFS manager with a fixed transition cost.

    Args:
        transition_ns: cost of one frequency/VPU-count transition
            (paper: ~10 µs).
    """

    transition_ns: float = 10_000.0

    def schedule(
        self, estimates: Sequence[KernelEstimate]
    ) -> tuple[list[str], float, int]:
        """The dynamic policy's choice sequence over a kernel stream.

        Returns (choices, total kernel time, transition count).
        """
        choices: list[str] = []
        total = 0.0
        transitions = 0
        previous = None
        for est in estimates:
            label = (
                TWO_VPUS
                if est.times_ns[TWO_VPUS] <= est.times_ns[ONE_VPU]
                else ONE_VPU
            )
            choices.append(label)
            total += est.times_ns[label]
            if previous is not None and label != previous:
                transitions += 1
            previous = label
        return choices, total, transitions

    def overhead_fraction(self, estimates: Sequence[KernelEstimate]) -> float:
        """Transition time as a fraction of the dynamic schedule's time."""
        _choices, total, transitions = self.schedule(estimates)
        if total <= 0:
            raise ValueError("empty or zero-time schedule")
        return transitions * self.transition_ns / total

    def is_negligible(
        self, estimates: Sequence[KernelEstimate], threshold: float = 0.02
    ) -> bool:
        """The paper's claim: overhead well under a few percent."""
        return self.overhead_fraction(estimates) < threshold
