"""Per-layer memory traffic for the roofline cap.

SAVE reduces *computation*, never traffic — pruned models stay in dense
form during training (Sec. II-D), so a layer's bytes are independent of
sparsity.  As SAVE shrinks compute, memory becomes the binding
constraint ("at high sparsity, the speedup reaches a ceiling because
the execution becomes memory, frontend, or latency bound") — and for
LSTM cells, whose compute-to-memory ratio is low, it binds almost
immediately, capping GNMT's speedups below the CNNs' (Sec. VII-A).
"""

from __future__ import annotations

from typing import Union

from repro.kernels.conv import ConvShape, Phase
from repro.kernels.lstm import LstmShape

Layer = Union[ConvShape, LstmShape]


def layer_traffic_bytes(
    layer: Layer, phase: Phase, batch: int = 1, element_bytes: int = 4
) -> float:
    """Aggregate DRAM-level traffic of one layer for one phase.

    Weights move once (shared across the batch via the L3); activations
    and gradients move once per sample; the phase's output is written
    once.  This is the streaming lower bound a well-blocked GEMM
    achieves.
    """
    if isinstance(layer, LstmShape):
        weights = layer.weight_count * element_bytes
        # Per time step: x and h vectors in, gate activations out.
        acts = (layer.input_size + layer.hidden) * batch * element_bytes
        gates = 4 * layer.hidden * batch * element_bytes
        per_step = weights + acts + gates
        total = per_step * layer.seq_len
        if phase != Phase.FORWARD:
            # Backward touches weights (transposed) plus gradients; the
            # weight stream dominates and is shared by the two backward
            # GEMMs, so each carries ~1.25x the forward traffic.
            total *= 1.25
        return float(total)

    weights = layer.weight_bytes(element_bytes)
    input_acts = layer.activation_bytes(batch, element_bytes)
    output = layer.output_bytes(batch, element_bytes)
    if phase == Phase.FORWARD:
        return float(weights + input_acts + output)
    if phase == Phase.BACKWARD_INPUT:
        # Read weights + output gradients, write input gradients.
        return float(weights + output + input_acts)
    # BACKWARD_WEIGHT: read input acts + output gradients, write dW.
    return float(input_acts + output + weights)


def layer_memory_time_ns(
    layer: Layer,
    phase: Phase,
    batch: int,
    bandwidth_bytes_per_ns: float,
    element_bytes: int = 4,
) -> float:
    """Streaming time of one layer phase at a given effective bandwidth."""
    if bandwidth_bytes_per_ns <= 0:
        raise ValueError("bandwidth must be positive")
    return layer_traffic_bytes(layer, phase, batch, element_bytes) / bandwidth_bytes_per_ns
