"""Work and bandwidth partitioning across the 28-core machine.

The evaluated layers run data/output-parallel across all cores, so one
layer's compute divides by the core count while the aggregate memory
traffic shares the DRAM bandwidth — which is what makes the low
compute-to-memory LSTM cells saturate early (Sec. VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.dram import DramModel


@dataclass(frozen=True)
class MulticoreSplit:
    """Aggregate compute/bandwidth model for one parallel layer.

    Args:
        cores: active core count (Table I: 28).
        dram: the shared DRAM model.
        bandwidth_efficiency: achievable fraction of peak DRAM
            bandwidth for streaming GEMM traffic.
    """

    cores: int = 28
    dram: DramModel = DramModel()
    bandwidth_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")

    def per_core_fmas(self, total_fmas: float) -> float:
        """A core's share of the layer's VFMA instructions."""
        return total_fmas / self.cores

    def compute_time_ns(self, total_fmas: float, ns_per_fma: float) -> float:
        """Layer compute time with all cores working in parallel."""
        return self.per_core_fmas(total_fmas) * ns_per_fma

    def memory_time_ns(self, total_bytes: float) -> float:
        """Time to stream the layer's aggregate traffic from DRAM."""
        effective = self.dram.bandwidth_bytes_per_ns * self.bandwidth_efficiency
        return total_bytes / effective

    def layer_time_ns(
        self, total_fmas: float, ns_per_fma: float, total_bytes: float
    ) -> float:
        """Roofline: the slower of compute and memory."""
        return max(
            self.compute_time_ns(total_fmas, ns_per_fma),
            self.memory_time_ns(total_bytes),
        )
