"""Energy model for SAVE kernels (Sec. IV-D's power argument).

Today's VPUs are power hungry enough that vendors downclock under wide
SIMD; SAVE's frequency boost with one VPU disabled only makes sense if
the energy story holds.  This model combines:

* **VPU dynamic energy** — a per-operation base cost plus a per-active-
  lane cost, so coalescing (fewer, fuller ops) saves energy beyond time,
* **memory dynamic energy** — L1-D reads and broadcast-cache accesses
  (B$ energies from Table II's CACTI calibration),
* **static energy** — per-VPU leakage (a disabled VPU stops leaking,
  gate-level) and baseline core power, integrated over the runtime.

Per-event energies are calibrated constants at 22 nm, chosen so a dense
FP32 GEMM lands near the ~0.5 nJ/FLOP ballpark of Skylake-class server
cores; the *relative* story (SAVE ≤ baseline energy, 1-VPU saving
leakage) is what the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.core.pipeline import SimResult
from repro.memory.broadcast_cache import BroadcastCacheKind


@dataclass(frozen=True)
class EnergyParams:
    """Calibrated per-event energies (nJ) and static powers (W)."""

    vpu_op_base_nj: float = 0.15
    vpu_lane_nj: float = 0.05
    l1_read_nj: float = 0.08
    b_cache_data_nj: float = 1.6e-2  # Table II calibration
    b_cache_mask_nj: float = 3.8e-4  # Table II calibration
    mgu_nj: float = 0.002
    vpu_leakage_w: float = 0.35  # per active VPU
    core_static_w: float = 1.2  # rest of the core, frequency-independent


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one kernel run, by component (nanojoules)."""

    vpu_dynamic_nj: float
    memory_dynamic_nj: float
    mgu_nj: float
    static_nj: float

    @property
    def total_nj(self) -> float:
        return self.vpu_dynamic_nj + self.memory_dynamic_nj + self.mgu_nj + self.static_nj

    def relative_to(self, other: EnergyBreakdown) -> float:
        """This run's energy as a fraction of ``other``'s."""
        return self.total_nj / other.total_nj


class EnergyModel:
    """Computes kernel energy from a :class:`SimResult`."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    def kernel_energy(self, result: SimResult, machine: MachineConfig) -> EnergyBreakdown:
        """Energy of one simulated kernel run.

        Args:
            result: the pipeline run's statistics.
            machine: the configuration it ran under (VPU count, B$).
        """
        p = self.params
        # Dynamic VPU energy: per op plus per active lane.  The baseline
        # (and the naive scheme) activates all 16 lanes per op.
        vpu = result.vpu_ops * p.vpu_op_base_nj + result.vpu_lane_slots * p.vpu_lane_nj

        b_kind = (
            machine.save.broadcast_cache
            if machine.save.enabled
            else BroadcastCacheKind.NONE
        )
        b_energy = {
            BroadcastCacheKind.NONE: 0.0,
            BroadcastCacheKind.DATA: p.b_cache_data_nj,
            BroadcastCacheKind.MASK: p.b_cache_mask_nj,
        }[b_kind]
        b_accesses = result.b_cache_reads_saved  # hits served by the B$
        memory = result.l1_port_accesses * p.l1_read_nj + b_accesses * b_energy

        mgu = result.mgu_processed * p.mgu_nj

        static_w = p.core_static_w + machine.core.num_vpus * p.vpu_leakage_w
        static = static_w * result.time_ns  # W × ns = nJ

        return EnergyBreakdown(
            vpu_dynamic_nj=vpu,
            memory_dynamic_nj=memory,
            mgu_nj=mgu,
            static_nj=static,
        )

    def energy_per_mac(
        self, result: SimResult, machine: MachineConfig, macs_per_fma: int = 16
    ) -> float:
        """Average energy per dense-equivalent MAC (nJ).

        Args:
            macs_per_fma: 16 for FP32 kernels, 32 for mixed precision.
        """
        macs = result.fma_count * macs_per_fma
        return self.kernel_energy(result, machine).total_nj / macs
