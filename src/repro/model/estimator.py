"""Shared machinery for the whole-network estimators (Fig. 14).

For each (layer, phase, training step), the estimator:

1. derives the (broadcasted, non-broadcasted) sparsity from Table III's
   operand mapping and the network's profiles,
2. looks up the per-VFMA steady-state time on the kernel's simulated
   2D sparsity surface (bilinear interpolation — the paper's Sec. VI
   methodology),
3. scales by the layer's GEMM volume split across 28 cores, and
4. applies the roofline memory cap (traffic is sparsity-independent).

Configurations follow Fig. 14: the 2-VPU baseline, SAVE with 2 VPUs at
1.7 GHz, SAVE with 1 VPU at 2.1 GHz, the per-epoch *static* best and
the per-kernel *dynamic* best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
from collections.abc import Sequence


from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, MachineConfig
from repro.kernels.conv import Phase
from repro.kernels.lstm import LstmShape
from repro.kernels.tiling import Precision
from repro.model.multicore import MulticoreSplit
from repro.model.networks import NetworkModel
from repro.model.phases import kernel_tile_for_phase, phase_sparsity
from repro.model.roofline import layer_traffic_bytes
from repro.model.surface import COARSE_LEVELS, SparsitySurface, SurfaceStore

#: Configuration labels in Fig. 14's bar order.
BASELINE = "baseline"
TWO_VPUS = "2 VPUs"
ONE_VPU = "1 VPU"
STATIC = "static"
DYNAMIC = "dynamic"

MACHINES: dict[str, MachineConfig] = {
    BASELINE: BASELINE_2VPU,
    TWO_VPUS: SAVE_2VPU,
    ONE_VPU: SAVE_1VPU,
}


@dataclass
class KernelEstimate:
    """One (layer, phase) GEMM's time under each machine configuration."""

    layer_name: str
    phase: Phase
    category: str
    #: config label → nanoseconds (baseline / 2 VPUs / 1 VPU).
    times_ns: dict[str, float]

    def dynamic_time(self) -> float:
        """Per-kernel best of the SAVE configurations."""
        return min(self.times_ns[TWO_VPUS], self.times_ns[ONE_VPU])


@dataclass
class ConfigResult:
    """Aggregated time of one configuration over a whole network."""

    label: str
    total_ns: float
    breakdown_ns: dict[str, float]

    def normalized(self, baseline_ns: float) -> float:
        """Execution time normalised to the baseline (Fig. 14 y-axis)."""
        return self.total_ns / baseline_ns

    def speedup(self, baseline_ns: float) -> float:
        return baseline_ns / self.total_ns


@dataclass
class NetworkEvaluation:
    """Fig. 14 bars for one network × precision."""

    network: str
    precision: Precision
    mode: str  # "inference" | "training"
    configs: dict[str, ConfigResult]

    @property
    def baseline_ns(self) -> float:
        return self.configs[BASELINE].total_ns

    def speedup(self, label: str) -> float:
        return self.configs[label].speedup(self.baseline_ns)

    def rows(self) -> list[tuple[str, float, float]]:
        """(config, normalised time, speedup) rows for reports."""
        base = self.baseline_ns
        return [
            (label, result.normalized(base), result.speedup(base))
            for label, result in self.configs.items()
        ]


class NetworkEstimator:
    """Computes per-kernel and whole-network times for one network."""

    def __init__(
        self,
        network: NetworkModel,
        precision: Precision = Precision.FP32,
        store: Optional[SurfaceStore] = None,
        levels: Sequence[float] = COARSE_LEVELS,
        k_steps: int = 24,
        split: Optional[MulticoreSplit] = None,
        cnn_batch: int = 28,
        lstm_batch: int = 84,
        engine: str = "exact",
    ) -> None:
        self.network = network
        self.precision = precision
        self.store = store if store is not None else SurfaceStore()
        self.levels = levels
        self.k_steps = k_steps
        self.split = split if split is not None else MulticoreSplit()
        self.cnn_batch = cnn_batch
        self.lstm_batch = lstm_batch
        self.engine = engine
        self.element_bytes = 2 if precision == Precision.MIXED else 4
        self.macs_per_fma = 32 if precision == Precision.MIXED else 16

    # ------------------------------------------------------------------

    def _surface(self, phase: Phase, lstm: bool, machine: MachineConfig) -> SparsitySurface:
        tile = kernel_tile_for_phase(phase, lstm=lstm)
        if not machine.save.enabled:
            # Baseline time is sparsity-independent: a single-point grid.
            return self.store.get(
                tile, self.precision, machine, levels=(0.0,),
                k_steps=self.k_steps, engine=self.engine,
            )
        return self.store.get(
            tile, self.precision, machine, levels=self.levels,
            k_steps=self.k_steps, engine=self.engine,
        )

    def _batch(self, layer) -> int:
        return self.lstm_batch if isinstance(layer, LstmShape) else self.cnn_batch

    def kernel_estimate(
        self, layer_index: int, phase: Phase, step: float
    ) -> KernelEstimate:
        """Time one (layer, phase) GEMM under every machine config."""
        layer = self.network.layers[layer_index]
        lstm = isinstance(layer, LstmShape)
        batch = self._batch(layer)
        bs, nbs = phase_sparsity(self.network, layer_index, phase, step)
        macs = layer.macs(phase, batch=batch)
        fmas = macs / self.macs_per_fma
        traffic = layer_traffic_bytes(layer, phase, batch, self.element_bytes)

        times: dict[str, float] = {}
        for label, machine in MACHINES.items():
            surface = self._surface(phase, lstm, machine)
            ns_per_fma = surface.interpolate(bs, nbs)
            times[label] = self.split.layer_time_ns(fmas, ns_per_fma, traffic)
        category = self._category(layer_index, phase, lstm)
        return KernelEstimate(layer.name, phase, category, times)

    def _category(self, layer_index: int, phase: Phase, lstm: bool) -> str:
        if not lstm and layer_index == 0:
            return "1st layer"
        if lstm:
            return "forward" if phase == Phase.FORWARD else "backward"
        if phase == Phase.FORWARD:
            return "forward"
        if phase == Phase.BACKWARD_INPUT:
            return "backward input"
        return "backward weight"

    # ------------------------------------------------------------------

    def phases_for(self, layer_index: int, training: bool) -> list[Phase]:
        """Phases executed for one layer (Sec. VI conventions).

        The first conv layer never back-propagates input; LSTMs run a
        merged backward pass (modeled as its two constituent GEMMs).
        """
        if not training:
            return [Phase.FORWARD]
        layer = self.network.layers[layer_index]
        if isinstance(layer, LstmShape):
            return [Phase.FORWARD, Phase.BACKWARD_INPUT, Phase.BACKWARD_WEIGHT]
        phases = [Phase.FORWARD, Phase.BACKWARD_WEIGHT]
        if layer_index > 0:
            phases.insert(1, Phase.BACKWARD_INPUT)
        return phases

    def step_estimates(self, step: float, training: bool) -> list[KernelEstimate]:
        """All kernel estimates of one training step (or inference run)."""
        estimates: list[KernelEstimate] = []
        for layer_index in range(self.network.n_layers):
            for phase in self.phases_for(layer_index, training):
                estimates.append(self.kernel_estimate(layer_index, phase, step))
        return estimates


def aggregate(
    estimates_per_step: list[list[KernelEstimate]],
    include_static: bool,
) -> dict[str, ConfigResult]:
    """Aggregate sampled steps into Fig. 14's configuration bars."""
    labels = [BASELINE, TWO_VPUS, ONE_VPU]
    if include_static:
        labels.append(STATIC)
    labels.append(DYNAMIC)

    totals = {label: 0.0 for label in labels}
    breakdowns: dict[str, dict[str, float]] = {label: {} for label in labels}

    def add(label: str, category: str, value: float) -> None:
        totals[label] += value
        breakdowns[label][category] = breakdowns[label].get(category, 0.0) + value

    n_steps = len(estimates_per_step)
    for estimates in estimates_per_step:
        # Fixed configurations.
        for label in (BASELINE, TWO_VPUS, ONE_VPU):
            for est in estimates:
                add(label, est.category, est.times_ns[label] / n_steps)
        # Static: whole-step best VPU count.
        if include_static:
            step_total = {
                label: sum(est.times_ns[label] for est in estimates)
                for label in (TWO_VPUS, ONE_VPU)
            }
            chosen = TWO_VPUS if step_total[TWO_VPUS] <= step_total[ONE_VPU] else ONE_VPU
            for est in estimates:
                add(STATIC, est.category, est.times_ns[chosen] / n_steps)
        # Dynamic: per-kernel best.
        for est in estimates:
            add(DYNAMIC, est.category, est.dynamic_time() / n_steps)

    return {
        label: ConfigResult(label, totals[label], breakdowns[label])
        for label in labels
    }
