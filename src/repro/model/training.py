"""End-to-end training estimation (Fig. 14c/14d).

Full training in a cycle-level simulator is infeasible, so — like the
paper — we sample training steps, map each (layer, step) pair's
profiled sparsity onto the kernels' 2D execution-time surfaces, sum the
layers per step, and average the sampled steps ("we take the average of
all the epochs as SAVE's mean network execution time during training").

The *static* policy chooses the better VPU count once per sampled step
(epoch); *dynamic* chooses per kernel.
"""

from __future__ import annotations

from typing import Optional
from collections.abc import Sequence

import numpy as np

from repro.kernels.tiling import Precision
from repro.model.estimator import (
    NetworkEstimator,
    NetworkEvaluation,
    aggregate,
)
from repro.model.multicore import MulticoreSplit
from repro.model.networks import NetworkModel
from repro.model.surface import COARSE_LEVELS, SurfaceStore


def sampled_steps(total_steps: int, samples: int) -> list[float]:
    """Evenly spaced training steps covering the whole run."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    if samples == 1:
        return [total_steps / 2]
    return list(np.linspace(0, total_steps, samples))


def evaluate_training(
    network: NetworkModel,
    precision: Precision = Precision.FP32,
    store: Optional[SurfaceStore] = None,
    levels: Sequence[float] = COARSE_LEVELS,
    k_steps: int = 24,
    samples: int = 8,
    split: Optional[MulticoreSplit] = None,
    engine: str = "exact",
) -> NetworkEvaluation:
    """Fig. 14c/d bars for one network × precision."""
    estimator = NetworkEstimator(
        network,
        precision=precision,
        store=store,
        levels=levels,
        k_steps=k_steps,
        split=split,
        engine=engine,
    )
    estimates_per_step = [
        estimator.step_estimates(step, training=True)
        for step in sampled_steps(network.total_steps, samples)
    ]
    configs = aggregate(estimates_per_step, include_static=True)
    return NetworkEvaluation(
        network=network.name,
        precision=precision,
        mode="training",
        configs=configs,
    )
