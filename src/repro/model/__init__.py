"""The paper's evaluation methodology (Sec. VI) on top of the pipeline.

* :mod:`repro.model.networks` — the layer zoo: VGG16 (13 convs),
  ResNet-50 (53 convs), GNMT (8 LSTM layers), each bound to its
  activation-sparsity profile and pruning schedule.
* :mod:`repro.model.phases` — Table III: which tensor feeds each GEMM
  operand's sparsity per phase, and the register tiling each phase's
  DNNL kernel uses.
* :mod:`repro.model.surface` — 2D (BS × NBS) execution-time surfaces
  from the detailed pipeline, with bilinear interpolation — exactly the
  paper's sampling methodology.
* :mod:`repro.model.roofline` — per-layer memory-boundedness caps from
  layer footprints and the DRAM/L3 bandwidth share of 28 cores.
* :mod:`repro.model.multicore` — work and bandwidth partitioning across
  the 28-core machine.
* :mod:`repro.model.inference` / :mod:`repro.model.training` — the
  whole-network estimators behind Fig. 14.
* :mod:`repro.model.analytic` — closed-form speedup *caps* (front-end /
  memory / latency bounds) used for the Fig. 16 histograms.
"""

from repro.model.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.model.networks import (
    GNMT,
    RESNET50_DENSE,
    RESNET50_PRUNED,
    VGG16,
    NetworkModel,
)
from repro.model.phases import kernel_tile_for_phase, phase_sparsity
from repro.model.surface import SparsitySurface, SurfaceStore
from repro.model.roofline import layer_memory_time_ns
from repro.model.multicore import MulticoreSplit

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "GNMT",
    "MulticoreSplit",
    "NetworkModel",
    "RESNET50_DENSE",
    "RESNET50_PRUNED",
    "SparsitySurface",
    "SurfaceStore",
    "VGG16",
    "kernel_tile_for_phase",
    "layer_memory_time_ns",
    "phase_sparsity",
]
