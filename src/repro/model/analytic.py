"""Closed-form bottleneck model of a SAVE kernel's steady state.

A fast, approximate companion to the cycle-level simulator: per
reduction step of a register-tiled GEMM it evaluates the four candidate
bottlenecks —

* **VPU throughput** — using binomial order statistics to model
  vertical coalescing's lane imbalance: with ``m`` distinct
  non-broadcasted sparsity patterns in flight and effectual-lane
  density ``d``, the ops needed per pattern-group is the expected
  *maximum* over the 16 slots of Binomial(m, d) counts, because the
  most-loaded slot gates the compaction (Sec. III's lane conflicts).
  Rotation triples the distinct patterns and divides the group size by
  three (Sec. IV-B).
* **front-end** — allocated µops over the issue width (skipped VFMAs
  still consume allocation bandwidth),
* **L1-D read ports** — vector loads plus the broadcasts the B$ cannot
  absorb,
* **dependence latency** — the serialised accumulator-chain update rate.

The model is validated against the simulator in the test suite (it
tracks within tens of percent and preserves orderings); experiments use
the simulator, keeping this model for cross-checks and quick sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import CoalescingScheme, MachineConfig
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.memory.broadcast_cache import BroadcastCacheKind


@lru_cache(maxsize=4096)
def expected_max_binomial(m: int, d: float, slots: int = 16) -> float:
    """E[max of ``slots`` iid Binomial(m, d) variables].

    Exact computation via the CDF: E[max] = Σ_{k≥1} P(max ≥ k)
    = Σ_{k≥1} (1 − F(k−1)^slots).
    """
    if m <= 0 or d <= 0.0:
        return 0.0
    d = min(d, 1.0)
    pmf = [math.comb(m, k) * d**k * (1 - d) ** (m - k) for k in range(m + 1)]
    cdf = []
    running = 0.0
    for value in pmf:
        running += value
        cdf.append(min(running, 1.0))
    return sum(1.0 - cdf[k - 1] ** slots for k in range(1, m + 1))


@dataclass(frozen=True)
class StepBottlenecks:
    """Per-reduction-step cycle costs of each candidate bottleneck."""

    vpu: float
    frontend: float
    l1: float
    latency: float

    @property
    def cycles(self) -> float:
        return max(self.vpu, self.frontend, self.l1, self.latency)

    @property
    def binding(self) -> str:
        """Name of the binding bottleneck."""
        values = {
            "vpu": self.vpu,
            "frontend": self.frontend,
            "l1": self.l1,
            "latency": self.latency,
        }
        return max(values, key=values.get)


def _uops_per_step(tile: RegisterTile, scalar_overhead: int = 2) -> float:
    fmas = tile.accumulators
    loads = tile.col_vectors
    broadcasts = tile.rows if tile.pattern == BroadcastPattern.EXPLICIT else 0
    return fmas + loads + broadcasts + scalar_overhead


def _vpu_ops_per_step(
    tile: RegisterTile,
    machine: MachineConfig,
    precision: Precision,
    bs: float,
    nbs: float,
) -> float:
    """Expected VPU operations per reduction step."""
    rows, cv = tile.rows, tile.col_vectors
    fmas = tile.accumulators
    if not machine.save.enabled:
        return float(fmas)

    if precision == Precision.MIXED:
        d_ml = (1 - bs) * (1 - nbs)
        survive = 1.0  # a pair-broadcast skips only when both halves are 0
        d_al = 1 - (1 - d_ml) ** 2
        if machine.save.mixed_precision_technique:
            # MLs compress 2-per-AL-slot along the chain; the slot load
            # is the larger of packed-ML demand and AL conflicts.
            d_eff = min(d_al, max(d_ml, d_al / 2 + d_ml / 2))
        else:
            d_eff = d_al
    else:
        survive = 1 - bs
        d_eff = 1 - nbs

    scheme = machine.save.coalescing
    if scheme == CoalescingScheme.HORIZONTAL:
        return fmas * survive * d_eff

    if scheme == CoalescingScheme.ROTATE_VERTICAL:
        patterns = 3 * cv
        group = rows * survive / 3.0
    else:
        patterns = cv
        group = rows * survive
    return group * expected_max_binomial(patterns, d_eff)


def _l1_cycles_per_step(
    tile: RegisterTile,
    machine: MachineConfig,
    bs: float,
    l1_ports: int = 2,
    elements_per_line: int = 16,
) -> float:
    """L1-D read-port demand per reduction step."""
    rows, cv = tile.rows, tile.col_vectors
    loads = float(cv)
    if tile.pattern == BroadcastPattern.EXPLICIT:
        broadcasts = float(rows)
    else:
        broadcasts = float(rows * cv)

    b_cache = machine.save.broadcast_cache if machine.save.enabled else BroadcastCacheKind.NONE
    if b_cache == BroadcastCacheKind.DATA:
        # Only one miss per A line: hits never touch the L1.
        broadcast_l1 = rows / elements_per_line
    elif b_cache == BroadcastCacheKind.MASK:
        # Non-zero broadcasts still fetch from L1.
        broadcast_l1 = rows / elements_per_line + broadcasts * (1 - bs)
    else:
        broadcast_l1 = broadcasts
    return (loads + broadcast_l1) / l1_ports


def step_bottlenecks(
    tile: RegisterTile,
    machine: MachineConfig,
    precision: Precision = Precision.FP32,
    bs: float = 0.0,
    nbs: float = 0.0,
) -> StepBottlenecks:
    """Evaluate the per-step cycle cost of each bottleneck."""
    core = machine.core
    vpu_ops = _vpu_ops_per_step(tile, machine, precision, bs, nbs)
    latency = machine.fma_latency(precision == Precision.MIXED)
    if machine.save.enabled:
        chain_rate = (1 - bs) * (1 - nbs)
        if not machine.save.lane_wise_dependence:
            # Vector-wise dependences serialise whole instructions.
            chain_rate = (1 - bs) * (1 - nbs ** 16)
        latency_cycles = latency * chain_rate
    else:
        latency_cycles = float(latency)
    return StepBottlenecks(
        vpu=vpu_ops / core.num_vpus,
        frontend=_uops_per_step(tile) / core.issue_width,
        l1=_l1_cycles_per_step(tile, machine, bs, machine.hierarchy.l1_read_ports),
        latency=latency_cycles,
    )


def predicted_time_per_fma_ns(
    tile: RegisterTile,
    machine: MachineConfig,
    precision: Precision = Precision.FP32,
    bs: float = 0.0,
    nbs: float = 0.0,
) -> float:
    """Model-predicted steady-state nanoseconds per VFMA instruction."""
    cycles = step_bottlenecks(tile, machine, precision, bs, nbs).cycles
    return cycles / tile.accumulators / machine.core.freq_ghz


def predicted_speedup(
    tile: RegisterTile,
    baseline: MachineConfig,
    machine: MachineConfig,
    precision: Precision = Precision.FP32,
    bs: float = 0.0,
    nbs: float = 0.0,
) -> float:
    """Model-predicted speedup of ``machine`` over ``baseline``."""
    base = predicted_time_per_fma_ns(tile, baseline, precision, 0.0, 0.0)
    save = predicted_time_per_fma_ns(tile, machine, precision, bs, nbs)
    return base / save


def predicted_surface(
    tile: RegisterTile,
    machine: MachineConfig,
    precision: Precision = Precision.FP32,
    levels=None,
):
    """Closed-form (BS × NBS) surface, shaped like the simulated ones.

    Returns a :class:`repro.model.surface.SparsitySurface` built from
    the bottleneck model instead of simulation — useful for instant
    design-space sweeps and for cross-validating the simulator.
    """
    import numpy as np

    from repro.model.surface import COARSE_LEVELS, SparsitySurface

    if levels is None:
        levels = COARSE_LEVELS
    n = len(levels)
    grid = np.zeros((n, n))
    for i, bs in enumerate(levels):
        for j, nbs in enumerate(levels):
            grid[i, j] = predicted_time_per_fma_ns(tile, machine, precision, bs, nbs)
    return SparsitySurface(levels=levels, ns_per_fma=grid, label="analytic")
