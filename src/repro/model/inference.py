"""Whole-network inference estimation (Fig. 14a/14b).

Inference runs at the sparsity reached at the *end* of training
(Sec. VI: "To compute the execution time of inference, we simulate with
the sparsity obtained at the end of training").  The *static* VPU
policy does not apply — its switching interval is much coarser than one
inference — so the bars are baseline / 2 VPUs / 1 VPU / dynamic.
"""

from __future__ import annotations

from typing import Optional
from collections.abc import Sequence

from repro.kernels.tiling import Precision
from repro.model.estimator import (
    NetworkEstimator,
    NetworkEvaluation,
    aggregate,
)
from repro.model.multicore import MulticoreSplit
from repro.model.networks import NetworkModel
from repro.model.surface import COARSE_LEVELS, SurfaceStore


def evaluate_inference(
    network: NetworkModel,
    precision: Precision = Precision.FP32,
    store: Optional[SurfaceStore] = None,
    levels: Sequence[float] = COARSE_LEVELS,
    k_steps: int = 24,
    split: Optional[MulticoreSplit] = None,
    engine: str = "exact",
) -> NetworkEvaluation:
    """Fig. 14a/b bars for one network × precision."""
    estimator = NetworkEstimator(
        network,
        precision=precision,
        store=store,
        levels=levels,
        k_steps=k_steps,
        split=split,
        engine=engine,
    )
    final_step = network.total_steps
    estimates = estimator.step_estimates(final_step, training=False)
    configs = aggregate([estimates], include_static=False)
    return NetworkEvaluation(
        network=network.name,
        precision=precision,
        mode="inference",
        configs=configs,
    )
