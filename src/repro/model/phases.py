"""Phase → sparsity and phase → kernel-tile mapping (Table III).

``phase_sparsity`` evaluates the operand-sparsity assignment documented
in :mod:`repro.kernels.conv` for one (network, layer, phase, step):

=================  ====================  =====================
phase              broadcasted operand   non-broadcasted operand
=================  ====================  =====================
forward            input activations     weights
backward input     output gradients      weights
backward weight    input activations     output gradients
=================  ====================  =====================

``kernel_tile_for_phase`` maps each phase onto the register tiling its
DNNL kernel uses — forward kernels run the wide explicit-broadcast
pattern, the backward kernels run the tall embedded-broadcast patterns
the paper's Figs. 17-19 study.
"""

from __future__ import annotations


from repro.kernels.conv import Phase
from repro.kernels.tiling import BroadcastPattern, RegisterTile
from repro.model.networks import NetworkModel


def phase_sparsity(
    network: NetworkModel, layer_index: int, phase: Phase, step: float
) -> tuple[float, float]:
    """(broadcasted, non-broadcasted) sparsity for one layer GEMM.

    Args:
        network: the network model.
        layer_index: 0-based layer index.
        phase: the GEMM phase.
        step: training step (epoch/iteration); use the final step for
            inference.
    """
    s_act = network.input_activation_sparsity(layer_index, step)
    s_grad = network.output_gradient_sparsity(layer_index, step)
    s_weights = network.weight_sparsity_at(step)
    if phase == Phase.FORWARD:
        return s_act, s_weights
    if phase == Phase.BACKWARD_INPUT:
        return s_grad, s_weights
    return s_act, s_grad


#: Phase → register tiling of the DNNL kernel computing it.
_PHASE_TILES = {
    Phase.FORWARD: RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
    Phase.BACKWARD_INPUT: RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
    Phase.BACKWARD_WEIGHT: RegisterTile(14, 2, BroadcastPattern.EMBEDDED),
}

#: LSTM cells use the wide explicit-broadcast tiling for all phases.
_LSTM_TILE = RegisterTile(4, 6, BroadcastPattern.EXPLICIT)


def kernel_tile_for_phase(phase: Phase, lstm: bool = False) -> RegisterTile:
    """Register tile of the kernel implementing one phase."""
    if lstm:
        return _LSTM_TILE
    return _PHASE_TILES[phase]
