"""2D sparsity surfaces — the paper's sampling methodology (Sec. VI).

"For each layer, we simulate SAVE with both weight and activation
sparsities of 0%-90% at 10% intervals ... The result is a 2D surface of
execution times ... we linearly map the profiled weight and activation
sparsities to the 2D surface" — we do exactly this: the detailed
pipeline simulates a kernel's steady-state inner loop at grid points of
(broadcasted, non-broadcasted) sparsity, and whole-network estimators
interpolate bilinearly.

Because each grid point is a full cycle-level simulation, surfaces are
memoised in a :class:`SurfaceStore` (JSON on disk), keyed by kernel
tiling, precision, machine configuration and grid.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional
from collections.abc import Sequence

import numpy as np

from repro.core.config import MachineConfig
from repro.core.pipeline import simulate
from repro.experiments.executor import (
    METRIC_NS_PER_FMA,
    PointJob,
    SimExecutor,
    default_executor,
)
from repro.fsio import FileLock, atomic_write_text
from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.library import trace_stream
from repro.kernels.tiling import Precision, RegisterTile
from repro.obs import maybe_span

#: Bump when the kernel generator's layout/µop stream changes, so
#: stale cached surfaces are never reused.
TRACE_GENERATOR_VERSION = 2

#: Code/schema version of the on-disk surface cache.  It is part of
#: every disk key *and* stamped inside each entry, so entries written
#: by an older build are invalidated (left orphaned, rebuilt under a
#: new key) instead of silently reused.  Bump on any change to the
#: simulator, the surface payload layout, or the key recipe.
SURFACE_SCHEMA_VERSION = 1

#: The paper's grid: 0%-90% at 10% intervals.
PAPER_LEVELS = tuple(round(0.1 * i, 1) for i in range(10))

#: Coarse grid for quick runs (tests, default benchmarks).
COARSE_LEVELS = (0.0, 0.3, 0.6, 0.9)


def machine_label(machine: MachineConfig) -> str:
    """Stable identity string for cache keys and reports."""
    core = machine.core
    save = machine.save
    if not save.enabled:
        return f"baseline-{core.num_vpus}vpu@{core.freq_ghz}"
    return (
        f"save-{save.coalescing.value}"
        f"{'+lwd' if save.lane_wise_dependence else ''}"
        f"{'+mp' if save.mixed_precision_technique else ''}"
        f"-b${save.broadcast_cache.name.lower()}"
        f"-{core.num_vpus}vpu@{core.freq_ghz}"
    )


def point_config(
    tile: RegisterTile,
    precision: Precision,
    bs: float,
    nbs: float,
    k_steps: int = 24,
    seed: int = 0,
) -> GemmKernelConfig:
    """The trace config of one surface grid point."""
    return GemmKernelConfig(
        name="surface",
        tile=tile,
        k_steps=k_steps,
        precision=precision,
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        seed=seed,
    )


def simulate_point(
    tile: RegisterTile,
    precision: Precision,
    machine: MachineConfig,
    bs: float,
    nbs: float,
    k_steps: int = 24,
    seed: int = 0,
) -> float:
    """One grid point: steady-state nanoseconds per VFMA instruction."""
    trace = trace_stream(point_config(tile, precision, bs, nbs, k_steps, seed))
    result = simulate(trace, machine, keep_state=False)
    return result.time_ns / result.fma_count


@dataclass
class SparsitySurface:
    """Execution time over the (BS, NBS) grid for one kernel/machine."""

    levels: Sequence[float]
    #: ns per VFMA, indexed ``[bs_index, nbs_index]``.
    ns_per_fma: np.ndarray
    label: str = ""
    #: Engine tier that produced every point ("exact", "fast",
    #: "analytic") — surfaces never mix tiers.
    engine: str = "exact"

    def __post_init__(self) -> None:
        self.ns_per_fma = np.asarray(self.ns_per_fma, dtype=float)
        n = len(self.levels)
        if self.ns_per_fma.shape != (n, n):
            raise ValueError("surface shape must match the grid")

    def interpolate(self, bs: float, nbs: float) -> float:
        """Bilinear interpolation, clamped to the grid's range."""
        return float(_bilinear(self.levels, self.ns_per_fma, bs, nbs))

    def to_json(self) -> dict:
        return {
            "levels": list(self.levels),
            "ns_per_fma": self.ns_per_fma.tolist(),
            "label": self.label,
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, payload: dict) -> SparsitySurface:
        return cls(
            levels=payload["levels"],
            ns_per_fma=np.array(payload["ns_per_fma"]),
            label=payload.get("label", ""),
            engine=payload.get("engine", "exact"),
        )

    @classmethod
    def build(
        cls,
        tile: RegisterTile,
        precision: Precision,
        machine: MachineConfig,
        levels: Sequence[float] = COARSE_LEVELS,
        k_steps: int = 24,
        seed: int = 0,
        executor: Optional[SimExecutor] = None,
        engine: str = "exact",
        store_root: Optional[Path] = None,
        store_overwrite: bool = False,
    ) -> SparsitySurface:
        """Simulate the full grid (the expensive path; memoise it).

        All ``n × n`` grid points are independent simulations; they go
        to the executor as one batch, so a parallel executor fills the
        whole surface concurrently.  Results come back in job order, so
        the surface is identical whichever backend ran it.  ``engine``
        selects the tier for *every* point and is recorded on the
        surface.

        With ``store_root`` set, the grid values are also appended to
        the columnar sweep store (kernel ``"surface"``, metric
        ``ns_per_fma``) so the surface stays queryable via
        ``repro query`` alongside streamed sweeps.
        """
        n = len(levels)
        runner = default_executor(executor)
        label = machine_label(machine)
        with maybe_span(runner.spans, "surface.build", machine=label, grid=n * n):
            jobs = [
                PointJob(
                    config=point_config(tile, precision, bs, nbs, k_steps, seed),
                    machine=machine,
                    metric=METRIC_NS_PER_FMA,
                    engine=engine,
                )
                for bs in levels
                for nbs in levels
            ]
            flat = runner.map(jobs)
            values = np.array(flat).reshape(n, n)
        if store_root is not None:
            from repro.store import SweepWriter

            meta = {
                "kernel": "surface",
                "machine": label,
                "engine": engine,
                "metric": METRIC_NS_PER_FMA,
                "precision": precision.value,
                "k_steps": k_steps,
                "seed": seed,
            }
            with SweepWriter(store_root, meta, overwrite=store_overwrite) as writer:
                index = 0
                for bs in levels:
                    for nbs in levels:
                        writer.append(bs, nbs, flat[index])
                        index += 1
        return cls(levels=levels, ns_per_fma=values, label=label, engine=engine)


def _bilinear(levels: Sequence[float], grid: np.ndarray, x: float, y: float) -> float:
    levels = np.asarray(levels, dtype=float)
    if len(levels) == 1:
        return float(grid[0, 0])
    x = float(np.clip(x, levels[0], levels[-1]))
    y = float(np.clip(y, levels[0], levels[-1]))
    xi = int(np.searchsorted(levels, x) - 1)
    yi = int(np.searchsorted(levels, y) - 1)
    xi = max(0, min(xi, len(levels) - 2))
    yi = max(0, min(yi, len(levels) - 2))
    x0, x1 = levels[xi], levels[xi + 1]
    y0, y1 = levels[yi], levels[yi + 1]
    tx = 0.0 if x1 == x0 else (x - x0) / (x1 - x0)
    ty = 0.0 if y1 == y0 else (y - y0) / (y1 - y0)
    v00, v01 = grid[xi, yi], grid[xi, yi + 1]
    v10, v11 = grid[xi + 1, yi], grid[xi + 1, yi + 1]
    return (
        v00 * (1 - tx) * (1 - ty)
        + v01 * (1 - tx) * ty
        + v10 * tx * (1 - ty)
        + v11 * tx * ty
    )


class SurfaceStore:
    """Disk-backed memoisation of sparsity surfaces.

    Args:
        directory: cache directory (defaults to the repo-level
            ``.surface_cache``).
        executor: used to fill missing surfaces' grid points; a
            parallel :class:`SimExecutor` builds each surface as one
            concurrent batch.  ``None`` means serial.
        memo_size: capacity of the in-memory LRU memo.  Repeated
            ``get()`` calls in one process hit the memo instead of
            re-reading and re-parsing the JSON cache file; least
            recently used surfaces are evicted beyond this size.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        executor: Optional[SimExecutor] = None,
        memo_size: int = 256,
    ) -> None:
        if directory is None:
            directory = Path(__file__).resolve().parents[3] / ".surface_cache"
        if memo_size <= 0:
            raise ValueError("memo_size must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.executor = executor
        self.memo_size = memo_size
        self._memory: OrderedDict[str, SparsitySurface] = OrderedDict()

    def _memo_put(self, key: str, surface: SparsitySurface) -> None:
        memory = self._memory
        memory[key] = surface
        memory.move_to_end(key)
        while len(memory) > self.memo_size:
            memory.popitem(last=False)

    def _key(
        self,
        tile: RegisterTile,
        precision: Precision,
        machine: MachineConfig,
        levels: Sequence[float],
        k_steps: int,
        engine: str = "exact",
    ) -> str:
        raw = json.dumps(
            {
                "schema": SURFACE_SCHEMA_VERSION,
                "generator": TRACE_GENERATOR_VERSION,
                "tile": [tile.rows, tile.col_vectors, tile.pattern.value],
                "precision": precision.value,
                "machine": machine_label(machine),
                "levels": list(levels),
                "k_steps": k_steps,
                "engine": engine,
            },
            sort_keys=True,
        )
        return hashlib.sha256(raw.encode()).hexdigest()[:24]

    def get(
        self,
        tile: RegisterTile,
        precision: Precision,
        machine: MachineConfig,
        levels: Sequence[float] = COARSE_LEVELS,
        k_steps: int = 24,
        executor: Optional[SimExecutor] = None,
        engine: str = "exact",
    ) -> SparsitySurface:
        """Fetch (memory → disk → simulate) a surface.

        A miss simulates every grid point in one executor batch and
        publishes the disk entry with one atomic replace.  The
        build-and-write runs under a per-entry advisory
        :class:`repro.fsio.FileLock`, so two processes missing on the
        same key simulate it once: the second blocks, then reads the
        first's result from disk.  ``engine`` is part of the cache key:
        surfaces from different tiers never collide.
        """
        key = self._key(tile, precision, machine, levels, k_steps, engine)
        memo = self._memory.get(key)
        if memo is not None:
            self._memory.move_to_end(key)
            return memo
        path = self.directory / f"{key}.json"
        surface = self._read_entry(path)
        if surface is None:
            with FileLock(path.with_suffix(".lock")):
                # Double-checked under the lock: a concurrent builder
                # may have published the entry while we waited.
                surface = self._read_entry(path)
                if surface is None:
                    surface = SparsitySurface.build(
                        tile,
                        precision,
                        machine,
                        levels=levels,
                        k_steps=k_steps,
                        executor=executor if executor is not None else self.executor,
                        engine=engine,
                    )
                    atomic_write_text(
                        path,
                        json.dumps(
                            {
                                "schema": SURFACE_SCHEMA_VERSION,
                                "surface": surface.to_json(),
                            }
                        ),
                    )
        self._memo_put(key, surface)
        return surface

    @staticmethod
    def _read_entry(path: Path) -> Optional[SparsitySurface]:
        """Load one disk entry; ``None`` on miss, stale schema or damage.

        Unreadable entries (pre-envelope format, torn or truncated
        JSON, schema mismatch) are treated as misses and rebuilt rather
        than raising — the cache must never be able to wedge a run.
        """
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SURFACE_SCHEMA_VERSION
        ):
            return None
        try:
            return SparsitySurface.from_json(payload["surface"])
        except (KeyError, TypeError, ValueError):
            return None
