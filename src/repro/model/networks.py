"""The evaluated networks: VGG16, ResNet-50 and GNMT (Sec. VI).

Each :class:`NetworkModel` binds the layer shapes to the sparsity
sources the evaluation needs per (layer, epoch, phase):

* input-activation sparsity — from the Fig. 12 profiles,
* output-gradient sparsity — the layer's *output* activation sparsity
  when gradients flow through plain ReLU backward (VGG16), zero when
  BatchNorm regenerates dense gradients (ResNet-50), and the dropout
  rate for GNMT,
* weight sparsity — from the Fig. 13 pruning schedule (zero if dense).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union
from collections.abc import Sequence

from repro.kernels.conv import ConvShape
from repro.kernels.lstm import LstmShape
from repro.sparsity.profiles import (
    ActivationProfile,
    gnmt_activation_profile,
    resnet50_dense_activation_profile,
    resnet50_pruned_activation_profile,
    vgg16_activation_profile,
)
from repro.sparsity.pruning import GNMT_PRUNING, RESNET50_PRUNING, PruningSchedule

Layer = Union[ConvShape, LstmShape]


def _vgg16_convs() -> list[ConvShape]:
    """The 13 convolutions of VGG16 on 224x224 ImageNet inputs."""
    plan = [
        # (in_ch, out_ch, spatial) — two convs per block then pool.
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    return [
        ConvShape(f"conv{i + 1}", cin, cout, size, size, kernel=3, stride=1, padding=1)
        for i, (cin, cout, size) in enumerate(plan)
    ]


def _resnet50_convs() -> list[ConvShape]:
    """The 53 convolutions of ResNet-50 (stem + 16 bottlenecks + 4
    downsample projections)."""
    layers: list[ConvShape] = [
        ConvShape("conv1", 3, 64, 224, 224, kernel=7, stride=2, padding=3)
    ]
    # (blocks, in_ch entering stage, mid_ch, out_ch, spatial after stride)
    stages = [
        (3, 64, 64, 256, 56),
        (4, 256, 128, 512, 28),
        (6, 512, 256, 1024, 14),
        (3, 1024, 512, 2048, 7),
    ]
    for stage_idx, (blocks, in_ch, mid, out, size) in enumerate(stages, start=2):
        for block in range(blocks):
            cin = in_ch if block == 0 else out
            prefix = f"conv{stage_idx}_{block + 1}"
            layers.append(
                ConvShape(f"{prefix}a", cin, mid, size, size, kernel=1, stride=1, padding=0)
            )
            layers.append(
                ConvShape(f"{prefix}b", mid, mid, size, size, kernel=3, stride=1, padding=1)
            )
            layers.append(
                ConvShape(f"{prefix}c", mid, out, size, size, kernel=1, stride=1, padding=0)
            )
            if block == 0:
                layers.append(
                    ConvShape(
                        f"{prefix}_proj", cin, out, size, size, kernel=1, stride=1, padding=0
                    )
                )
    return layers


def _gnmt_cells() -> list[LstmShape]:
    """GNMT: 4 encoder + 4 decoder LSTM layers, 1024 hidden units."""
    cells: list[LstmShape] = []
    for i in range(4):
        cells.append(LstmShape(f"encoder_l{i}", hidden=1024, input_size=1024, seq_len=30))
    for i in range(4):
        cells.append(LstmShape(f"decoder_l{i}", hidden=1024, input_size=1024, seq_len=30))
    return cells


@dataclass(frozen=True)
class NetworkModel:
    """One evaluated network configuration.

    Args:
        name: label matching the paper's figures.
        layers: conv or LSTM layer shapes, in order.
        activation_profile: Fig. 12 activation-sparsity progression.
        pruning: Fig. 13 schedule (None = dense weights).
        gradient_source: "relu" (output-gradient sparsity = output
            activation sparsity), "none" (BatchNorm kills it), or
            "dropout" (constant rate).
        mlp_like: True for LSTM networks (merged backward phase,
            no dense first layer).
    """

    name: str
    layers: Sequence[Layer]
    activation_profile: ActivationProfile
    pruning: Optional[PruningSchedule] = None
    gradient_source: str = "relu"
    mlp_like: bool = False

    def __post_init__(self) -> None:
        if self.gradient_source not in ("relu", "none", "dropout"):
            raise ValueError(f"unknown gradient source {self.gradient_source!r}")
        if len(self.layers) != self.activation_profile.n_layers:
            raise ValueError(
                f"{self.name}: {len(self.layers)} layers vs profile with "
                f"{self.activation_profile.n_layers}"
            )

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def total_steps(self) -> int:
        """Training length (epochs or iterations)."""
        return self.activation_profile.n_steps

    def weight_sparsity_at(self, step: float) -> float:
        """Weight sparsity from the pruning schedule at a step."""
        if self.pruning is None:
            return 0.0
        return self.pruning.sparsity_at(step)

    def input_activation_sparsity(self, layer_index: int, step: float) -> float:
        """Input-activation sparsity of a 0-based layer at a step."""
        return self.activation_profile.sparsity_at(layer_index + 1, step)

    def output_gradient_sparsity(self, layer_index: int, step: float) -> float:
        """Output-gradient sparsity of a 0-based layer at a step."""
        if self.gradient_source == "none":
            return 0.0
        if self.gradient_source == "dropout":
            return self.activation_profile.sparsity_at(layer_index + 1, step)
        # ReLU backward: gradient zeros match the *output* activation's,
        # which is the next layer's input (last layer ~ its own input).
        next_layer = min(layer_index + 2, self.activation_profile.n_layers)
        return self.activation_profile.sparsity_at(next_layer, step)


#: Dense VGG16 (evaluated dense: its activation sparsity is already high).
VGG16 = NetworkModel(
    name="VGG16",
    layers=_vgg16_convs(),
    activation_profile=vgg16_activation_profile(90),
    pruning=None,
    gradient_source="relu",
)

#: Dense ResNet-50 (BatchNorm: dense output gradients).
RESNET50_DENSE = NetworkModel(
    name="ResNet-50",
    layers=_resnet50_convs(),
    activation_profile=resnet50_dense_activation_profile(90),
    pruning=None,
    gradient_source="none",
)

#: Pruned ResNet-50 (80% weights at epoch 60, Fig. 13).
RESNET50_PRUNED = NetworkModel(
    name="ResNet-50 pruned",
    layers=_resnet50_convs(),
    activation_profile=resnet50_pruned_activation_profile(102),
    pruning=RESNET50_PRUNING,
    gradient_source="none",
)

#: Pruned GNMT (90% weights at iteration 190K; 20% dropout sparsity).
GNMT = NetworkModel(
    name="GNMT pruned",
    layers=_gnmt_cells(),
    activation_profile=gnmt_activation_profile(340_000),
    pruning=GNMT_PRUNING,
    gradient_source="dropout",
    mlp_like=True,
)
