"""Schema of the columnar sweep store.

One sweep = one fingerprint-keyed directory holding a ``manifest.json``
plus append-only NPZ *segments* of fixed-schema columns.  The identity
of a sweep (kernel, machine, engine, metric, grid parameters) lives in
the manifest; per-point data lives in the segments.  The split is what
makes the store out-of-core: a query touches one segment at a time, a
writer holds one segment's buffer, and neither ever needs the whole
sweep in memory.

``SWEEP_COLUMNS`` is the **producer/consumer contract table**: the
writer emits exactly these columns per segment and the query engine
reads exactly these.  The ``repro.check`` schema-drift rule cross-checks
both sides against this table, so adding a column here without updating
the consumers (or vice versa) fails static analysis, not a sweep at
hour three.
"""

from __future__ import annotations

from typing import Any

#: Version of the on-disk sweep-store layout.  Bump on any change to
#: the manifest structure, the segment column set, or their dtypes;
#: the store refuses to read mismatched versions (stores are caches —
#: re-sweeping is always safe, silently misreading is not).
#: v2: ``mechanism`` joined the sweep identity, so sweeps run under
#: different skip mechanisms never share a fingerprint.
STORE_SCHEMA_VERSION = 2

#: Per-point segment columns: name → numpy dtype string.  Every segment
#: NPZ contains exactly these arrays, all of one common length.
SWEEP_COLUMNS: dict[str, str] = {
    "bs": "float64",
    "nbs": "float64",
    "value": "float64",
}

#: Manifest fields identifying one sweep (the fingerprint key).  All
#: values must be JSON-representable; the fingerprint is
#: :func:`repro.fsio.canonical_fingerprint` over them plus the schema
#: version.
SWEEP_META_FIELDS = (
    "kernel",
    "machine",
    "engine",
    "mechanism",
    "metric",
    "precision",
    "k_steps",
    "seed",
)

#: Fields of one query result row: the manifest identity columns
#: followed by the per-point segment columns, in output order.  This is
#: the consumer-side contract table (CSV export shares it).
QUERY_FIELDS = (
    "kernel",
    "machine",
    "engine",
    "mechanism",
    "metric",
    "bs",
    "nbs",
    "value",
)


def sweep_fingerprint(meta: dict[str, Any]) -> str:
    """Content address of one sweep's identity.

    Same convention as serve-request fingerprints: sha256 over the
    canonical sorted JSON, 24 hex chars (:func:`repro.fsio.canonical_fingerprint`).
    """
    from repro.fsio import canonical_fingerprint

    payload = {"schema": STORE_SCHEMA_VERSION}
    for field in SWEEP_META_FIELDS:
        payload[field] = meta.get(field)
    if payload["mechanism"] is None:
        payload["mechanism"] = "save"
    return canonical_fingerprint(payload)


def validate_meta(meta: dict[str, Any]) -> dict[str, Any]:
    """Check a sweep identity dict; returns it normalised to the field set.

    ``mechanism`` defaults to ``"save"`` when absent — producers that
    predate the mechanism axis describe SAVE sweeps by construction.
    """
    if "mechanism" not in meta:
        meta = {**meta, "mechanism": "save"}
    missing = [f for f in SWEEP_META_FIELDS if f not in meta]
    if missing:
        raise ValueError(f"sweep meta missing fields: {', '.join(missing)}")
    unknown = [f for f in meta if f not in SWEEP_META_FIELDS]
    if unknown:
        raise ValueError(f"sweep meta has unknown fields: {', '.join(unknown)}")
    return {field: meta[field] for field in SWEEP_META_FIELDS}
