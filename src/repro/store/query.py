"""Query engine over the columnar sweep store.

Reads are manifest-first: sweep-level filters (kernel, machine, engine,
metric) prune whole directories before a single segment is opened, and
matching sweeps are then scanned one segment at a time with vectorised
range filters — so queries over a million-point store run in O(segment)
memory.

Row output follows ``QUERY_FIELDS`` (the consumer-side contract table):
manifest identity columns first, then the per-point segment columns.
CSV export shares the same field order.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Optional, TextIO, Union
from collections.abc import Iterable, Iterator

import numpy as np

from repro.store.schema import QUERY_FIELDS
from repro.store.writer import read_manifest

__all__ = ["SweepStore"]


class SweepStore:
    """Read-side handle on a sweep-store root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- discovery --------------------------------------------------------

    def manifests(self) -> Iterator[dict[str, Any]]:
        """All readable sweep manifests, in fingerprint order."""
        if not self.root.is_dir():
            return
        for sweep_dir in sorted(self.root.iterdir()):
            manifest = sweep_dir / "manifest.json"
            if not manifest.is_file():
                continue
            yield read_manifest(sweep_dir)

    def describe(self) -> list[dict[str, Any]]:
        """One summary dict per sweep (identity + row count + state)."""
        out = []
        for manifest in self.manifests():
            summary = dict(manifest["meta"])
            summary["fingerprint"] = manifest["fingerprint"]
            summary["rows"] = manifest["rows"]
            summary["complete"] = manifest["complete"]
            out.append(summary)
        return out

    # -- querying ---------------------------------------------------------

    def query(
        self,
        kernel: Optional[str] = None,
        machine: Optional[str] = None,
        engine: Optional[str] = None,
        mechanism: Optional[str] = None,
        metric: Optional[str] = None,
        bs_range: Optional[tuple[float, float]] = None,
        nbs_range: Optional[tuple[float, float]] = None,
        fingerprint: Optional[str] = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield matching point rows, segment by segment.

        Sweep-level filters are exact string matches on the manifest
        identity; ``bs_range``/``nbs_range`` are inclusive bounds on
        the per-point sparsity columns.  Rows come out in (sweep
        fingerprint, segment, row) order — deterministic for a given
        store state.  Manifests written before the mechanism axis read
        back as ``mechanism="save"``.
        """
        for manifest in self.manifests():
            meta = manifest["meta"]
            if fingerprint is not None and manifest["fingerprint"] != fingerprint:
                continue
            if kernel is not None and meta.get("kernel") != kernel:
                continue
            if machine is not None and meta.get("machine") != machine:
                continue
            if engine is not None and meta.get("engine") != engine:
                continue
            if mechanism is not None and meta.get("mechanism", "save") != mechanism:
                continue
            if metric is not None and meta.get("metric") != metric:
                continue
            sweep_dir = self.root / manifest["fingerprint"]
            identity = {
                "kernel": meta.get("kernel"),
                "machine": meta.get("machine"),
                "engine": meta.get("engine"),
                "mechanism": meta.get("mechanism", "save"),
                "metric": meta.get("metric"),
            }
            for entry in manifest["segments"]:
                path = sweep_dir / entry["file"]
                with np.load(path) as segment:
                    bs = segment["bs"]
                    nbs = segment["nbs"]
                    value = segment["value"]
                keep = np.ones(len(bs), dtype=bool)
                if bs_range is not None:
                    keep &= (bs >= bs_range[0]) & (bs <= bs_range[1])
                if nbs_range is not None:
                    keep &= (nbs >= nbs_range[0]) & (nbs <= nbs_range[1])
                for i in np.flatnonzero(keep):
                    yield {
                        **identity,
                        "bs": float(bs[i]),
                        "nbs": float(nbs[i]),
                        "value": float(value[i]),
                    }

    def count(self, **filters: Any) -> int:
        """Number of rows a :meth:`query` with these filters would yield."""
        return sum(1 for _ in self.query(**filters))

    # -- aggregation ------------------------------------------------------

    #: Reductions ``aggregate`` supports over the ``value`` column.
    REDUCERS = ("mean", "min", "max", "count")

    def aggregate(
        self,
        group_by: "tuple[str, ...] | list[str]",
        reduce: str = "mean",
        **filters: Any,
    ) -> list[dict[str, Any]]:
        """Group matching rows by columns and reduce their values.

        Streams :meth:`query` rows through O(groups) running
        accumulators — raw rows are never collected, so aggregating a
        million-point store costs one segment of memory plus one
        accumulator per distinct group.  Results come back sorted by
        group key, each row carrying the group columns, ``reduce`` and
        the reduced ``value`` (row count for ``reduce="count"``).
        """
        columns = tuple(group_by)
        if not columns:
            raise ValueError("group_by needs at least one column")
        for column in columns:
            if column not in QUERY_FIELDS:
                raise ValueError(
                    f"unknown group-by column {column!r}; "
                    f"available: {', '.join(QUERY_FIELDS)}"
                )
        if reduce not in self.REDUCERS:
            raise ValueError(
                f"unknown reduction {reduce!r}; "
                f"available: {', '.join(self.REDUCERS)}"
            )
        # group key → [count, sum, min, max]
        groups: dict[tuple, list[float]] = {}
        for row in self.query(**filters):
            key = tuple(row[column] for column in columns)
            value = row["value"]
            acc = groups.get(key)
            if acc is None:
                groups[key] = [1, value, value, value]
            else:
                acc[0] += 1
                acc[1] += value
                acc[2] = min(acc[2], value)
                acc[3] = max(acc[3], value)
        try:
            ordered = sorted(groups)
        except TypeError:  # mixed-type keys (e.g. None from old manifests)
            ordered = sorted(groups, key=lambda k: tuple(map(str, k)))
        out = []
        for key in ordered:
            count, total, low, high = groups[key]
            if reduce == "count":
                value = float(count)
            elif reduce == "mean":
                value = total / count
            elif reduce == "min":
                value = low
            else:
                value = high
            result = dict(zip(columns, key))
            result["reduce"] = reduce
            result["value"] = value
            out.append(result)
        return out

    # -- export -----------------------------------------------------------

    @staticmethod
    def write_csv(rows: Iterable[dict[str, Any]], out: TextIO) -> int:
        """Write query rows as CSV in ``QUERY_FIELDS`` order; returns count."""
        writer = csv.writer(out)
        writer.writerow(QUERY_FIELDS)
        count = 0
        for row in rows:
            writer.writerow([row[field] for field in QUERY_FIELDS])
            count += 1
        return count

    @staticmethod
    def rows_to_json(rows: Iterable[dict[str, Any]]) -> str:
        """Serialize query rows as a JSON array (field order preserved)."""
        return json.dumps(
            [{field: row[field] for field in QUERY_FIELDS} for row in rows]
        )
