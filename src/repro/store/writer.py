"""Append-only segment writer for the columnar sweep store.

A :class:`SweepWriter` buffers points in memory up to ``segment_rows``,
then publishes each full segment as one immutable NPZ file and records
it in the manifest.  Both writes are atomic (:mod:`repro.fsio` temp +
rename) and manifest updates are serialized under a :class:`FileLock`,
so concurrent sweeps writing into one store directory never tear a
segment or lose a manifest entry.

Crash behaviour: segments are published before the manifest references
them, so a crash leaves at worst an orphan segment file (harmless —
readers only trust the manifest) and a sweep marked ``complete: false``.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from types import TracebackType
from typing import Any, Optional, Union

import numpy as np

from repro.fsio import FileLock, atomic_write_bytes, atomic_write_text
from repro.store.schema import (
    STORE_SCHEMA_VERSION,
    SWEEP_COLUMNS,
    sweep_fingerprint,
    validate_meta,
)

__all__ = ["SweepWriter", "StoreError"]

#: Default points per segment: large enough that NPZ overhead amortises,
#: small enough that the writer's resident buffer stays trivial.
DEFAULT_SEGMENT_ROWS = 4096


class StoreError(RuntimeError):
    """A sweep-store invariant was violated (version, state, or schema)."""


def _manifest_path(sweep_dir: Path) -> Path:
    return sweep_dir / "manifest.json"


def read_manifest(sweep_dir: Path) -> dict[str, Any]:
    """Load and version-check one sweep's manifest."""
    payload = json.loads(_manifest_path(sweep_dir).read_text())
    version = payload.get("schema")
    if version != STORE_SCHEMA_VERSION:
        raise StoreError(
            f"{sweep_dir}: store schema {version!r} != "
            f"supported {STORE_SCHEMA_VERSION}"
        )
    return payload


class SweepWriter:
    """Incrementally writes one sweep's points into a store directory.

    Args:
        root: store root directory (created on demand); each sweep
            lives in ``root/<fingerprint>/``.
        meta: the sweep identity (``SWEEP_META_FIELDS``) — kernel,
            machine, engine, metric, precision, k_steps, seed.
        segment_rows: points buffered per published segment.
        overwrite: if the sweep already exists, discard it and start
            fresh instead of raising (append-only stores never silently
            mix two runs' points).

    Use as a context manager: normal exit marks the sweep complete,
    exceptional exit leaves it incomplete (queryable, flagged).
    """

    def __init__(
        self,
        root: Union[str, Path],
        meta: dict[str, Any],
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        overwrite: bool = False,
    ) -> None:
        if segment_rows <= 0:
            raise ValueError("segment_rows must be positive")
        self.root = Path(root)
        self.meta = validate_meta(meta)
        self.fingerprint = sweep_fingerprint(self.meta)
        self.segment_rows = segment_rows
        self.sweep_dir = self.root / self.fingerprint
        self.sweep_dir.mkdir(parents=True, exist_ok=True)
        self._buffer: dict[str, list[float]] = {c: [] for c in SWEEP_COLUMNS}
        self._closed = False
        with self._lock():
            manifest = self._load_or_none()
            if manifest is not None and not overwrite:
                raise StoreError(
                    f"sweep {self.fingerprint} already exists in {self.root} "
                    "(pass overwrite=True to replace it)"
                )
            if manifest is not None:
                for entry in manifest.get("segments", []):
                    seg = self.sweep_dir / entry["file"]
                    if seg.exists():
                        seg.unlink()
            self._segments: list[dict[str, Any]] = []
            self._rows = 0
            self._write_manifest_locked(complete=False)

    # -- manifest ---------------------------------------------------------

    def _lock(self) -> FileLock:
        return FileLock(self.sweep_dir / "manifest.json.lock")

    def _load_or_none(self) -> Optional[dict[str, Any]]:
        if not _manifest_path(self.sweep_dir).exists():
            return None
        return read_manifest(self.sweep_dir)

    def _write_manifest_locked(self, complete: bool) -> None:
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
            "columns": list(SWEEP_COLUMNS),
            "segments": self._segments,
            "rows": self._rows,
            "complete": complete,
        }
        atomic_write_text(_manifest_path(self.sweep_dir), json.dumps(payload))

    # -- appending --------------------------------------------------------

    def append(self, bs: float, nbs: float, value: float) -> None:
        """Append one point; publishes a segment when the buffer fills."""
        self._append_columns(bs=bs, nbs=nbs, value=value)

    def append_batch(
        self,
        bs: "np.ndarray | list[float]",
        nbs: "np.ndarray | list[float]",
        value: "np.ndarray | list[float]",
    ) -> None:
        """Append a batch of points (equal-length column vectors)."""
        if not (len(bs) == len(nbs) == len(value)):
            raise ValueError("column batches must have equal lengths")
        for b, n, v in zip(bs, nbs, value):
            self._append_columns(bs=b, nbs=n, value=v)

    def _append_columns(self, **values: float) -> None:
        if self._closed:
            raise StoreError("writer is closed")
        for column in SWEEP_COLUMNS:
            self._buffer[column].append(float(values[column]))
        if len(self._buffer["bs"]) >= self.segment_rows:
            self.flush()

    def flush(self) -> None:
        """Publish the buffered points as one segment (no-op if empty)."""
        count = len(self._buffer["bs"])
        if count == 0:
            return
        arrays = {
            column: np.asarray(self._buffer[column], dtype=dtype)
            for column, dtype in SWEEP_COLUMNS.items()
        }
        index = len(self._segments)
        name = f"seg-{index:06d}.npz"
        blob = io.BytesIO()
        np.savez_compressed(blob, **arrays)
        atomic_write_bytes(self.sweep_dir / name, blob.getvalue())
        self._segments.append({"file": name, "rows": count})
        self._rows += count
        self._buffer = {c: [] for c in SWEEP_COLUMNS}
        with self._lock():
            self._write_manifest_locked(complete=False)

    # -- lifecycle --------------------------------------------------------

    @property
    def rows_written(self) -> int:
        """Points published to segments so far (excludes the buffer)."""
        return self._rows

    def close(self, complete: bool = True) -> None:
        """Flush the tail segment and finalize the manifest."""
        if self._closed:
            return
        self.flush()
        with self._lock():
            self._write_manifest_locked(complete=complete)
        self._closed = True

    def __enter__(self) -> SweepWriter:
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close(complete=exc_type is None)
