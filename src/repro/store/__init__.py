"""Out-of-core columnar sweep store.

Sweeps used to land as single surface JSONs — fine for a 10×10 grid,
hopeless for the ROADMAP's million-point target.  This package shards
sweep results into an **append-only columnar store**:

* one fingerprint-keyed directory per sweep (identity =
  kernel/machine/engine/metric/precision/k_steps/seed, addressed by
  the same sha256 convention as serve fingerprints),
* fixed-schema NPZ segments (:data:`repro.store.schema.SWEEP_COLUMNS`)
  published atomically via :mod:`repro.fsio` and referenced from a
  ``manifest.json``,
* a manifest-first query engine (:class:`SweepStore`) with sweep-level
  and sparsity-range filters and CSV export, surfaced as the
  ``repro query`` CLI.

Writers (:class:`SweepWriter`) buffer one segment at a time; readers
scan one segment at a time — both sides run in O(segment) memory
however large the sweep.
"""

from repro.store.query import SweepStore
from repro.store.schema import (
    QUERY_FIELDS,
    STORE_SCHEMA_VERSION,
    SWEEP_COLUMNS,
    SWEEP_META_FIELDS,
    sweep_fingerprint,
    validate_meta,
)
from repro.store.writer import DEFAULT_SEGMENT_ROWS, StoreError, SweepWriter

__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "QUERY_FIELDS",
    "STORE_SCHEMA_VERSION",
    "SWEEP_COLUMNS",
    "SWEEP_META_FIELDS",
    "StoreError",
    "SweepStore",
    "SweepWriter",
    "sweep_fingerprint",
    "validate_meta",
]
