"""``repro sweep`` and ``repro query`` — the sweep-store CLI.

``sweep`` runs an out-of-core sparsity sweep (any grid size, bounded
memory) straight into a columnar store directory; ``query`` filters
that store by kernel/machine/engine/metric and sparsity range, printing
rows as text, CSV or JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

__all__ = ["query_main", "sweep_main"]

#: Machine presets offered by ``repro sweep --machine``.
MACHINE_PRESETS = ("baseline", "save", "save-1vpu")


def _resolve_machine(name: str):
    from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU

    return {
        "baseline": BASELINE_2VPU,
        "save": SAVE_2VPU,
        "save-1vpu": SAVE_1VPU,
    }[name]


def _levels(count: int) -> list[float]:
    """``count`` evenly spaced sparsity levels over [0, 0.9]."""
    if count < 1:
        raise ValueError("level count must be >= 1")
    if count == 1:
        return [0.0]
    step = 0.9 / (count - 1)
    return [round(i * step, 6) for i in range(count)]


def sweep_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro sweep``."""
    parser = argparse.ArgumentParser(
        prog="save-repro sweep",
        description=(
            "Run an out-of-core sparsity sweep into a columnar sweep "
            "store; memory stays bounded however large the grid."
        ),
    )
    parser.add_argument("kernel", help="library kernel name (see 'list')")
    parser.add_argument(
        "--store", required=True, metavar="DIR", help="sweep-store root directory"
    )
    parser.add_argument(
        "--machine", default="save", choices=MACHINE_PRESETS,
        help="machine preset to sweep under (default: save)",
    )
    parser.add_argument(
        "--engine", default="fast", choices=("exact", "fast", "analytic"),
        help="simulation tier per point (default: fast)",
    )
    parser.add_argument(
        "--mechanism", default="save", choices=("save", "sparce", "indexmac"),
        help=(
            "skip mechanism to sweep under (default: save; rivals "
            "require --engine exact)"
        ),
    )
    parser.add_argument(
        "--grid", type=int, default=32, metavar="N",
        help="N×N sparsity grid over [0, 0.9] (default: 32)",
    )
    parser.add_argument(
        "--metric", default="ns_per_fma", choices=("ns_per_fma", "time_ns"),
        help="per-point value recorded (default: ns_per_fma)",
    )
    parser.add_argument("--k-steps", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="POINTS",
        help="points simulated per executor batch",
    )
    parser.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing sweep with the same identity",
    )
    args = parser.parse_args(argv)

    from repro.experiments.executor import SimExecutor
    from repro.experiments.streamsweep import DEFAULT_BATCH_POINTS, stream_sweep
    from repro.kernels.library import get_kernel
    from repro.rivals.mechanisms import MechanismError
    from repro.store import StoreError

    try:
        spec = get_kernel(args.kernel)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    levels = _levels(args.grid)
    try:
        summary = stream_sweep(
            spec,
            _resolve_machine(args.machine),
            levels,
            levels,
            args.store,
            engine=args.engine,
            mechanism=args.mechanism,
            metric=args.metric,
            k_steps=args.k_steps,
            seed=args.seed,
            executor=SimExecutor(jobs=args.jobs),
            batch_points=args.batch if args.batch else DEFAULT_BATCH_POINTS,
            overwrite=args.overwrite,
        )
    except MechanismError as error:
        print(str(error), file=sys.stderr)
        return 2
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(
        f"swept {summary['points']} points "
        f"({summary['kernel']} on {summary['machine']}, "
        f"engine={summary['engine']}) -> {args.store}/{summary['fingerprint']}"
    )
    return 0


def query_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro query``."""
    parser = argparse.ArgumentParser(
        prog="save-repro query",
        description=(
            "Query a columnar sweep store: filter by kernel, machine, "
            "engine, metric and sparsity range; export CSV/JSON."
        ),
    )
    parser.add_argument("store", metavar="DIR", help="sweep-store root directory")
    parser.add_argument("--kernel", default=None)
    parser.add_argument("--machine", default=None, help="machine label filter")
    parser.add_argument("--engine", default=None)
    parser.add_argument("--mechanism", default=None, help="skip-mechanism filter")
    parser.add_argument("--metric", default=None)
    parser.add_argument(
        "--bs", default=None, metavar="LO:HI",
        help="inclusive broadcasted-sparsity range, e.g. 0.3:0.6",
    )
    parser.add_argument(
        "--nbs", default=None, metavar="LO:HI",
        help="inclusive non-broadcasted-sparsity range",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "csv", "json"),
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the store's sweeps (identity, rows, state) and exit",
    )
    parser.add_argument(
        "--count", action="store_true",
        help="print only the matching row count",
    )
    parser.add_argument(
        "--group-by", default=None, metavar="COL[,COL...]",
        help=(
            "aggregate instead of listing rows: group by these result "
            "columns (e.g. mechanism or kernel,bs)"
        ),
    )
    parser.add_argument(
        "--reduce", default="mean", choices=("mean", "min", "max", "count"),
        help="reduction over each group's values (default: mean)",
    )
    args = parser.parse_args(argv)

    from repro.store import SweepStore
    from repro.store.writer import StoreError

    def parse_range(text: Optional[str], flag: str):
        if text is None:
            return None
        try:
            lo, hi = text.split(":", 1)
            return (float(lo), float(hi))
        except ValueError:
            parser.error(f"{flag}: expected LO:HI, got {text!r}")

    store = SweepStore(args.store)
    try:
        if args.list:
            for summary in store.describe():
                state = "complete" if summary["complete"] else "INCOMPLETE"
                mechanism = summary.get("mechanism", "save")
                print(
                    f"{summary['fingerprint']}  {summary['kernel']}  "
                    f"{summary['machine']}  engine={summary['engine']}  "
                    f"mechanism={mechanism}  "
                    f"metric={summary['metric']}  rows={summary['rows']}  "
                    f"{state}"
                )
            return 0
        filters = dict(
            kernel=args.kernel,
            machine=args.machine,
            engine=args.engine,
            mechanism=args.mechanism,
            metric=args.metric,
            bs_range=parse_range(args.bs, "--bs"),
            nbs_range=parse_range(args.nbs, "--nbs"),
        )
        if args.group_by is not None:
            columns = tuple(
                c.strip() for c in args.group_by.split(",") if c.strip()
            )
            try:
                groups = store.aggregate(columns, args.reduce, **filters)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
            if args.format == "json":
                import json

                print(json.dumps(groups))
                return 0
            for group in groups:
                label = "  ".join(
                    f"{column}={group[column]}" for column in columns
                )
                print(f"{label}  {args.reduce}={group['value']:.6g}")
            print(f"({len(groups)} groups)")
            return 0
        rows = store.query(**filters)
        if args.count:
            print(sum(1 for _ in rows))
            return 0
        if args.format == "csv":
            SweepStore.write_csv(rows, sys.stdout)
            return 0
        if args.format == "json":
            print(SweepStore.rows_to_json(rows))
            return 0
        count = 0
        for row in rows:
            print(
                f"{row['kernel']}  {row['machine']}  {row['engine']}  "
                f"{row['metric']}  bs={row['bs']:.3f}  nbs={row['nbs']:.3f}  "
                f"value={row['value']:.6g}"
            )
            count += 1
        print(f"({count} rows)")
        return 0
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 1
