"""Fig. 13: schedule of weight pruning."""

from __future__ import annotations

from typing import Optional

from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.sparsity.pruning import GNMT_PRUNING, RESNET50_PRUNING


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the pruning schedules (Fig. 13)."""
    rows = []
    resnet_steps = [0, 32, 40, 48, 60, 80, 102]
    for step in resnet_steps:
        rows.append(
            ("ResNet-50", f"epoch {step}", f"{RESNET50_PRUNING.sparsity_at(step):.0%}")
        )
    gnmt_steps = [0, 40_000, 80_000, 120_000, 190_000, 340_000]
    for step in gnmt_steps:
        rows.append(
            ("GNMT", f"iteration {step}", f"{GNMT_PRUNING.sparsity_at(step):.0%}")
        )
    return ExperimentReport(
        experiment="fig13",
        title="Schedule of weight pruning",
        headers=("Network", "Step", "Weight sparsity"),
        rows=rows,
        notes=[
            "ResNet-50: prune epochs 32-60 to 80%; GNMT: iterations "
            "40K-190K to 90% (Zhu-Gupta cubic schedule)",
        ],
        data={
            "resnet50": RESNET50_PRUNING.curve().tolist(),
            "gnmt": GNMT_PRUNING.curve(points=200).tolist(),
        },
    )
