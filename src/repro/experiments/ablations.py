"""Extension experiment: ablations of SAVE's design choices.

DESIGN.md §5 calls out the design decisions worth ablating beyond the
paper's own figures:

* the introduction's *naive lane-skip* strawman vs full SAVE,
* MGU count (the paper claims issue-width MGUs are never the bottleneck),
* B$ entry count (32 = one per architectural vector register),
* rotation-state count (3 vs off),
* reservation-station size (bounds the combination window),
* issue width (the front-end headroom SAVE's key idea relies on).

Each ablation simulates the Fig. 18a kernel (ResNet3_2 backward-input,
the hardest case for coalescing) at 60% NBS and a forward kernel at 40%
BS / 40% NBS, reporting speedups over the unmodified baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_2VPU,
    CoalescingScheme,
    MachineConfig,
)
from repro.experiments.context import RunContext
from repro.experiments.executor import PointJob, default_executor
from repro.experiments.report import ExperimentReport
from repro.kernels.library import get_kernel

KERNEL_POINTS = {
    "fwd (explicit, BS=40% NBS=40%)": ("resnet2_2_fwd", 0.4, 0.4),
    "bwd-input (embedded, NBS=60%)": ("resnet3_2_bwd_input", 0.0, 0.6),
}


def _ablation_machines() -> dict[str, MachineConfig]:
    return {
        "SAVE (full)": SAVE_2VPU,
        "naive lane-skip": SAVE_2VPU.with_save(coalescing=CoalescingScheme.NAIVE),
        "1 MGU": SAVE_2VPU.with_save(mgu_count=1),
        "B$ 4 entries": SAVE_2VPU.with_save(broadcast_cache_entries=4),
        "rotation off": SAVE_2VPU.with_save(rotation_states=1),
        "RS 32 entries": SAVE_2VPU.with_core(rs_entries=32),
        "issue width 4": SAVE_2VPU.with_core(issue_width=4),
        "issue width 6": SAVE_2VPU.with_core(issue_width=6),
    }


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the design-choice ablation table."""
    from repro.kernels.tiling import Precision

    ctx = ctx if ctx is not None else RunContext()
    k_steps = ctx.resolve_k_steps(24)
    machines = _ablation_machines()
    jobs: list[PointJob] = []
    for kernel_name, bs, nbs in KERNEL_POINTS.values():
        config = get_kernel(kernel_name).config(
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            precision=Precision.FP32,
            k_steps=k_steps,
        )
        jobs.append(PointJob(config=config, machine=BASELINE_2VPU))
        jobs.extend(
            PointJob(config=config, machine=machine) for machine in machines.values()
        )
    times = default_executor(ctx.executor).map(jobs)

    rows: list[tuple[str, str, float]] = []
    data: dict[str, dict[str, float]] = {}
    stride = 1 + len(machines)
    for point_index, point_label in enumerate(KERNEL_POINTS):
        base_time = times[point_index * stride]
        data[point_label] = {}
        for m_index, label in enumerate(machines):
            speedup = base_time / times[point_index * stride + 1 + m_index]
            data[point_label][label] = speedup
            rows.append((point_label, label, speedup))
    return ExperimentReport(
        experiment="ablations",
        title="Design-choice ablations (extension; DESIGN.md section 5)",
        headers=("Kernel point", "Configuration", "Speedup"),
        rows=rows,
        notes=[
            "naive lane-skip gains little from NBS-only sparsity, "
            "confirming the paper's strawman argument",
            "issue-width ablation probes the front-end headroom SAVE's "
            "key idea relies on",
        ],
        data=data,
    )
