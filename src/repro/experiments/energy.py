"""Extension experiment: energy of SAVE kernels (Sec. IV-D's rationale).

For the Fig. 15 kernel at several sparsity points, report execution
time *and* energy for the baseline, SAVE with 2 VPUs, and SAVE with one
VPU disabled and the clock boosted — quantifying the power-saving claim
behind the VPU-gating feature.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU
from repro.core.pipeline import simulate
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.library import generate_trace, get_kernel
from repro.kernels.tiling import Precision
from repro.model.energy import EnergyModel

MACHINES = {
    "baseline": BASELINE_2VPU,
    "SAVE 2 VPUs": SAVE_2VPU,
    "SAVE 1 VPU": SAVE_1VPU,
}

SPARSITY_POINTS = ((0.0, 0.0), (0.4, 0.4), (0.8, 0.8))


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the energy comparison table."""
    ctx = ctx if ctx is not None else RunContext()
    k_steps = ctx.resolve_k_steps(24)
    model = EnergyModel()
    spec = get_kernel("resnet2_2_fwd")
    rows: list[tuple] = []
    data: dict[str, dict[str, float]] = {}
    for bs, nbs in SPARSITY_POINTS:
        trace = generate_trace(
            spec.config(
                broadcast_sparsity=bs,
                nonbroadcast_sparsity=nbs,
                precision=Precision.FP32,
                k_steps=k_steps,
            )
        )
        point = f"BS={bs:.0%} NBS={nbs:.0%}"
        data[point] = {}
        baseline_energy = None
        baseline_time = None
        for label, machine in MACHINES.items():
            result = simulate(trace, machine, keep_state=False)
            energy = model.kernel_energy(result, machine)
            if label == "baseline":
                baseline_energy = energy.total_nj
                baseline_time = result.time_ns
            data[point][label] = energy.total_nj
            rows.append(
                (
                    point,
                    label,
                    f"{result.time_ns:.0f}ns",
                    f"{energy.total_nj:.0f}nJ",
                    f"{baseline_time / result.time_ns:.2f}x",
                    f"{energy.total_nj / baseline_energy:.2f}",
                )
            )
    return ExperimentReport(
        experiment="energy",
        title="Kernel energy: baseline vs SAVE vs VPU-gated SAVE (extension)",
        headers=("Sparsity", "Config", "Time", "Energy", "Speedup", "Rel. energy"),
        rows=rows,
        notes=[
            "at high sparsity, gating one VPU and boosting the clock "
            "cuts both time and energy (leakage of the idle VPU)",
        ],
        data=data,
    )
