"""Table III: types of sparsity (BS/NBS) per network and phase.

Derived from the phase→operand sparsity mapping evaluated mid-training:
a check mark means the corresponding operand has non-zero sparsity for
some training step.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.conv import Phase
from repro.model.networks import GNMT, RESNET50_DENSE, RESNET50_PRUNED, VGG16
from repro.model.phases import phase_sparsity


def _marks(network, phase: Phase) -> tuple[str, str]:
    """(BS, NBS) check marks for one network phase."""
    # Probe a mid-network layer late in training (pruning ramped up).
    layer = min(4, network.n_layers - 1)
    step = network.total_steps * 0.9
    bs, nbs = phase_sparsity(network, layer, phase, step)
    return ("X" if bs > 0 else "", "X" if nbs > 0 else "")


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the sparsity-type matrix (Table III)."""
    rows: list[tuple[str, ...]] = []
    for network in (VGG16, RESNET50_DENSE, RESNET50_PRUNED):
        fwd = _marks(network, Phase.FORWARD)
        bwd_in = _marks(network, Phase.BACKWARD_INPUT)
        bwd_w = _marks(network, Phase.BACKWARD_WEIGHT)
        label = {
            "VGG16": "dense VGG16",
            "ResNet-50": "dense ResNet-50",
            "ResNet-50 pruned": "pruned ResNet-50",
        }[network.name]
        rows.append((label,) + fwd + bwd_in + bwd_w)
    # GNMT: merged backward phase.
    fwd = _marks(GNMT, Phase.FORWARD)
    bwd = _marks(GNMT, Phase.BACKWARD_INPUT)
    rows.append(("pruned GNMT",) + fwd + bwd + ("-", "-"))

    report = ExperimentReport(
        experiment="table3",
        title="Types of sparsity in the evaluated networks",
        headers=(
            "Network",
            "fwd BS",
            "fwd NBS",
            "bwd-input BS",
            "bwd-input NBS",
            "bwd-weight BS",
            "bwd-weight NBS",
        ),
        rows=rows,
        notes=[
            "GNMT's backward phases are merged (its bwd columns show the "
            "merged phase; bwd-weight columns are not applicable)",
            "dense ResNet-50's backward-input has no sparsity at all "
            "(BatchNorm), matching the paper's note",
        ],
        data={row[0]: row[1:] for row in rows},
    )
    return report
