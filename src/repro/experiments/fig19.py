"""Fig. 19: SAVE's mixed-precision technique on/off.

The mixed-precision ResNet4_1a backward-input kernel with one VPU at
0% BS across the NBS axis, with and without the accumulator-chain ML
compression (Sec. V)."""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAVE_1VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import PAPER_SWEEP_LEVELS, QUICK_LEVELS, sweep_kernel
from repro.kernels.library import get_kernel

CONFIGS = {
    "w/o MP technique": SAVE_1VPU.with_save(mixed_precision_technique=False),
    "w/ MP technique": SAVE_1VPU.with_save(mixed_precision_technique=True),
}


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the Fig. 19 mixed-precision ablation."""
    ctx = ctx if ctx is not None else RunContext()
    levels = ctx.levels
    if levels is None:
        levels = PAPER_SWEEP_LEVELS if ctx.full_grid else QUICK_LEVELS
    spec = get_kernel("resnet4_1a_bwd_input")
    results = sweep_kernel(
        spec,
        CONFIGS,
        bs_levels=(0.0,),
        nbs_levels=levels,
        k_steps=ctx.resolve_k_steps(24),
        executor=ctx.executor,
        engine=ctx.engine,
    )
    rows = []
    for label, sweep in results.items():
        for (_bs, nbs), speedup in sorted(sweep.speedups.items()):
            rows.append((label, f"{nbs:.0%}", speedup))
    return ExperimentReport(
        experiment="fig19",
        title="Mixed-precision technique on ResNet4_1a backward-input",
        headers=("Configuration", "NBS", "Speedup"),
        rows=rows,
        notes=[
            "with the technique, exploitable sparsity approaches the ML "
            "sparsity instead of its square",
        ],
        data={label: sweep.speedups for label, sweep in results.items()},
    )
