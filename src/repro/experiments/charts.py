"""Terminal charts for experiment data (no plotting dependencies).

Two primitives cover the paper's figures:

* :func:`heatmap` — a (BS × NBS) speedup surface as a shaded grid
  (Fig. 15's panels),
* :func:`line_chart` — speedup-vs-sparsity series with one glyph per
  technique (Figs. 17/18/19).

Both return strings, so they compose with reports and tests.
"""

from __future__ import annotations

from collections.abc import Mapping

#: Shade ramp from low to high.
SHADES = " .:-=+*#%@"

#: Series glyphs, assigned in insertion order.
GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float) -> float:
    if high <= low:
        return 0.0
    return (value - low) / (high - low)


def heatmap(
    grid: Mapping[tuple[float, float], float],
    title: str = "",
    cell_width: int = 6,
) -> str:
    """Render a {(bs, nbs): value} mapping as a shaded numeric grid.

    Rows are BS levels (ascending downward), columns NBS levels; each
    cell prints the value and a shade character scaled over the grid's
    range.
    """
    if not grid:
        raise ValueError("empty grid")
    bs_levels = sorted({bs for bs, _ in grid})
    nbs_levels = sorted({nbs for _, nbs in grid})
    low = min(grid.values())
    high = max(grid.values())
    lines = []
    if title:
        lines.append(title)
    header = "BS\\NBS " + " ".join(f"{nbs:>{cell_width}.0%}" for nbs in nbs_levels)
    lines.append(header)
    for bs in bs_levels:
        cells = []
        for nbs in nbs_levels:
            value = grid.get((bs, nbs))
            if value is None:
                cells.append(" " * cell_width)
                continue
            shade = SHADES[
                min(int(_scale(value, low, high) * len(SHADES)), len(SHADES) - 1)
            ]
            cells.append(f"{value:>{cell_width - 1}.2f}{shade}")
        lines.append(f"{bs:>6.0%} " + " ".join(cells))
    lines.append(f"range: {low:.2f} ({SHADES[0]!r}) .. {high:.2f} ({SHADES[-1]!r})")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Mapping[float, float]],
    title: str = "",
    height: int = 12,
    y_label: str = "speedup",
) -> str:
    """Render named {x: y} series as an ASCII scatter/line chart.

    Args:
        series: label → {x value → y value}; x values should be shared.
        height: chart rows.
    """
    if not series:
        raise ValueError("no series")
    xs = sorted({x for points in series.values() for x in points})
    ys = [y for points in series.values() for y in points.values()]
    low, high = min(ys), max(ys)
    span = high - low or 1.0
    # Canvas: rows top (high) to bottom (low).
    width = len(xs)
    canvas = [[" "] * width for _ in range(height)]
    for index, points in enumerate(series.values()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for col, x in enumerate(xs):
            if x not in points:
                continue
            row = height - 1 - int(_scale(points[x], low, high) * (height - 1))
            if canvas[row][col] == " ":
                canvas[row][col] = glyph
            else:
                canvas[row][col] = "!"  # overlap marker
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        level = high - span * row_index / (height - 1)
        lines.append(f"{level:>6.2f} |" + "  ".join(row))
    lines.append(" " * 7 + "+" + "-" * (3 * width - 2))
    lines.append(" " * 8 + "  ".join(f"{x:.0%}"[:3].rjust(1) for x in xs))
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f"{y_label}; x = sparsity; {legend}; ! = overlap")
    return "\n".join(lines)


def fig15_charts(data: dict) -> str:
    """Render a fig15 report's data as two heatmaps."""
    return "\n\n".join(
        heatmap(data[key], title=f"Fig. 15 ({label})")
        for key, label in (("2vpu", "2 VPUs @1.7GHz"), ("1vpu", "1 VPU @2.1GHz"))
    )


def compare_charts(data: dict) -> str:
    """Render a rivals report's data as the SAVE-vs-rivals figure.

    One line chart — speedup vs. NBS at the grid's highest BS level,
    one series per mechanism — followed by a per-mechanism speedup
    heatmap over the full grid.
    """
    levels = data["levels"]
    top = max(levels)
    series = {
        mechanism: {
            nbs: value
            for (bs, nbs), value in data["speedups"][mechanism].items()
            if bs == round(top, 2)
        }
        for mechanism in data["mechanisms"]
    }
    parts = [
        line_chart(
            series,
            title=(
                f"Skip mechanisms on {data['kernel']} "
                f"(BS={top:.0%}, speedup over dense baseline)"
            ),
        )
    ]
    for mechanism in data["mechanisms"]:
        parts.append(
            heatmap(data["speedups"][mechanism], title=f"{mechanism} speedup")
        )
    return "\n\n".join(parts)


def fig18_charts(data: dict) -> str:
    """Render a fig18 report's data as one line chart per panel."""
    charts = []
    for panel, techniques in data.items():
        series = {
            label: {nbs: value for (_bs, nbs), value in points.items()}
            for label, points in techniques.items()
        }
        charts.append(line_chart(series, title=f"Fig. 18 {panel}"))
    return "\n\n".join(charts)
