"""Fig. 12: activation sparsity during end-to-end training.

The figure plots, per conv layer, the sparsity from the first epoch to
the last.  The report prints each layer's first-epoch, mid-training and
final sparsity for the three CNN configurations.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.model.networks import RESNET50_DENSE, RESNET50_PRUNED, VGG16


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the activation-sparsity progressions (Fig. 12)."""
    rows = []
    data = {}
    for network in (VGG16, RESNET50_DENSE, RESNET50_PRUNED):
        profile = network.activation_profile
        series = []
        for layer in range(1, profile.n_layers + 1):
            first = profile.sparsity_at(layer, 1)
            mid = profile.sparsity_at(layer, profile.n_steps // 2)
            last = profile.sparsity_at(layer, profile.n_steps)
            series.append((layer, first, mid, last))
        data[profile.name] = series
        # Summarise: first/middle/last layer of each network.
        for layer in (1, 2, profile.n_layers // 2, profile.n_layers):
            first = profile.sparsity_at(layer, 1)
            last = profile.sparsity_at(layer, profile.n_steps)
            rows.append(
                (
                    profile.name,
                    f"layer {layer}",
                    f"{first:.0%}",
                    f"{last:.0%}",
                )
            )
    return ExperimentReport(
        experiment="fig12",
        title="Activation sparsity during end-to-end training",
        headers=("Training run", "Layer", "First epoch", "Last epoch"),
        rows=rows,
        notes=[
            "full per-layer series available in report.data",
            "profiles are parametric reconstructions of the paper's "
            "measured curves (see DESIGN.md substitutions)",
        ],
        data=data,
    )
