"""Experiment registry and dispatcher.

Every runner has the same shape — ``run(ctx: RunContext)`` — and
:func:`run_experiment` is the one front door: it resolves the runner,
builds/extends the context, and rejects options no experiment
understands instead of silently swallowing them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional
from collections.abc import Callable

from repro.experiments import (  # noqa: F401  (imported for side effect-free registry)
    ablations,
    energy,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    rivals,
    scaling,
    table1,
    table2,
    table3,
    validation,
)
from repro.experiments.context import CONTEXT_FIELDS, RunContext
from repro.experiments.report import ExperimentReport
from repro.obs import maybe_span

EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    # Extensions beyond the paper's figures (DESIGN.md section 5).
    "ablations": ablations.run,
    "energy": energy.run,
    "rivals": rivals.run,
    "scaling": scaling.run,
    "validation": validation.run,
}


def run_experiment(
    name: str, ctx: Optional[RunContext] = None, **options
) -> ExperimentReport:
    """Run one experiment by id (e.g. "fig15", "table2").

    ``options`` are :class:`RunContext` field overrides (``k_steps=8``,
    ``executor=...``); anything else raises ``TypeError`` — the old
    ``**_kwargs`` swallowing let typos pass silently.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        available = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; available: {available}") from None
    unknown = sorted(set(options) - set(CONTEXT_FIELDS))
    if unknown:
        raise TypeError(
            f"run_experiment() got unknown option(s) {', '.join(unknown)}; "
            f"valid options: {', '.join(CONTEXT_FIELDS)}"
        )
    context = ctx if ctx is not None else RunContext()
    if options:
        context = dataclasses.replace(context, **options)
    with maybe_span(context.spans, f"experiment:{name}"):
        return runner(context)


__all__ = ["EXPERIMENTS", "RunContext", "run_experiment"]
