"""Experiment registry and dispatcher."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (  # noqa: F401  (imported for side effect-free registry)
    ablations,
    energy,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    scaling,
    table1,
    table2,
    table3,
    validation,
)
from repro.experiments.report import ExperimentReport

EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    # Extensions beyond the paper's figures (DESIGN.md section 5).
    "ablations": ablations.run,
    "energy": energy.run,
    "scaling": scaling.run,
    "validation": validation.run,
}


def run_experiment(name: str, **kwargs) -> ExperimentReport:
    """Run one experiment by id (e.g. "fig15", "table2")."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        available = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; available: {available}") from None
    return runner(**kwargs)
