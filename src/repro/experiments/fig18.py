"""Fig. 18: lane-balancing techniques on two backward-input kernels.

Vertical coalescing (VC), rotate-vertical coalescing (RVC), VC+LWD,
RVC+LWD and horizontal compression (HC, +6-cycle latency) with one VPU,
at 0% BS across the NBS axis — the pruned-ResNet-50 backward-input
setting where NBS is present without BS (Table III).

Kernel (a): ResNet3_2, 28 accumulators, effective CW ≈ 1.
Kernel (b): ResNet5_1a, 21 accumulators, effective CW ≈ 3.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAVE_1VPU, CoalescingScheme
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import PAPER_SWEEP_LEVELS, QUICK_LEVELS, sweep_kernel
from repro.kernels.library import get_kernel

TECHNIQUES = {
    "VC": SAVE_1VPU.with_save(
        coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
    ),
    "RVC": SAVE_1VPU.with_save(
        coalescing=CoalescingScheme.ROTATE_VERTICAL, lane_wise_dependence=False
    ),
    "VC+LWD": SAVE_1VPU.with_save(
        coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=True
    ),
    "RVC+LWD": SAVE_1VPU.with_save(
        coalescing=CoalescingScheme.ROTATE_VERTICAL, lane_wise_dependence=True
    ),
    "HC": SAVE_1VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL),
}

KERNELS = {
    "a (ResNet3_2, eff. CW~1)": "resnet3_2_bwd_input",
    "b (ResNet5_1a, eff. CW~3)": "resnet5_1a_bwd_input",
}


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the Fig. 18 lane-balancing comparison."""
    ctx = ctx if ctx is not None else RunContext()
    levels = ctx.levels
    if levels is None:
        levels = PAPER_SWEEP_LEVELS if ctx.full_grid else QUICK_LEVELS
    rows = []
    data = {}
    for panel, kernel_name in KERNELS.items():
        spec = get_kernel(kernel_name)
        results = sweep_kernel(
            spec,
            TECHNIQUES,
            bs_levels=(0.0,),
            nbs_levels=levels,
            k_steps=ctx.resolve_k_steps(24),
            executor=ctx.executor,
            engine=ctx.engine,
        )
        data[panel] = {label: sweep.speedups for label, sweep in results.items()}
        for label, sweep in results.items():
            for (_bs, nbs), speedup in sorted(sweep.speedups.items()):
                rows.append((panel, label, f"{nbs:.0%}", speedup))
    return ExperimentReport(
        experiment="fig18",
        title="SAVE speedups with techniques for load-balancing VPU lanes",
        headers=("Panel", "Technique", "NBS", "Speedup"),
        rows=rows,
        notes=[
            "panel a (effective CW~1): RVC should beat VC decisively; "
            "panel b (effective CW~3): VC+LWD gains more than on (a)",
            "RVC+LWD should match HC at medium sparsity and beat it at "
            "high sparsity (HC pays +6 cycles latency)",
        ],
        data=data,
    )
