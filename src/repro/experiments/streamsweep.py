"""Out-of-core sparsity sweeps: bounded memory at any grid size.

:func:`stream_sweep` is the scale path to the ROADMAP's million-point
target: it walks the (BS, NBS) product lazily, simulates in fixed-size
batches through the :class:`repro.experiments.executor.SimExecutor`,
and appends each batch straight into the columnar sweep store
(:class:`repro.store.SweepWriter`).  Peak memory is O(batch + segment),
independent of grid size — the property the CI streaming-smoke job and
the ``sweep_throughput`` bench workload pin down.

Results are byte-identical to the batched in-memory paths
(``sweep_kernel``, ``SparsitySurface.build``) for the same grid: the
jobs, their order within the sweep, and the executor semantics are the
same — only the result's resting place differs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union
from collections.abc import Iterator, Sequence

from repro.core.config import MachineConfig
from repro.experiments.executor import (
    METRIC_NS_PER_FMA,
    PointJob,
    SimExecutor,
    default_executor,
)
from repro.kernels.library import KernelSpec, get_kernel
from repro.kernels.tiling import Precision
from repro.model.surface import machine_label
from repro.obs import maybe_span
from repro.store import DEFAULT_SEGMENT_ROWS, SweepWriter

__all__ = ["stream_sweep", "DEFAULT_BATCH_POINTS"]

#: Points simulated per executor batch.  Large enough to amortise
#: executor dispatch, small enough that the in-flight job list and its
#: results stay trivially resident.
DEFAULT_BATCH_POINTS = 2048


def _grid(
    bs_levels: Sequence[float], nbs_levels: Sequence[float]
) -> Iterator[tuple[float, float]]:
    """Lazy row-major (bs, nbs) product — never materializes the grid."""
    for bs in bs_levels:
        for nbs in nbs_levels:
            yield (float(bs), float(nbs))


def stream_sweep(
    kernel: Union[str, KernelSpec],
    machine: MachineConfig,
    bs_levels: Sequence[float],
    nbs_levels: Sequence[float],
    store_root: Union[str, Path],
    engine: str = "fast",
    mechanism: str = "save",
    metric: str = METRIC_NS_PER_FMA,
    precision: Optional[Precision] = None,
    k_steps: int = 24,
    seed: int = 0,
    executor: Optional[SimExecutor] = None,
    batch_points: int = DEFAULT_BATCH_POINTS,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    overwrite: bool = False,
) -> dict[str, Any]:
    """Sweep one kernel/machine over a sparsity grid into the store.

    Args:
        kernel: library kernel name or spec.
        machine: the machine configuration to sweep under.
        bs_levels / nbs_levels: sparsity axes; the sweep covers their
            full product, batch by batch.
        store_root: sweep-store root directory.
        engine: simulation tier for every point (``fast`` is the tier
            that makes six-figure grids practical).
        mechanism: skip mechanism for every point; rivals require
            ``engine="exact"`` (validated up front, before any store
            directory is created).
        metric: per-point value recorded (``ns_per_fma`` or ``time_ns``).
        overwrite: replace an existing sweep with the same identity.

    Returns a summary dict: fingerprint, machine label, points written.
    """
    if batch_points <= 0:
        raise ValueError("batch_points must be positive")
    spec = get_kernel(kernel)
    resolved = precision if precision is not None else spec.default_precision
    if mechanism != "save":
        # Fail before the store directory exists: validates the name,
        # the engine pairing, and the config/mechanism compatibility.
        from repro.rivals.mechanisms import resolve_mechanism

        resolve_mechanism(
            mechanism,
            spec.config(precision=resolved, k_steps=k_steps, seed=seed),
            machine,
            engine,
        )
    label = machine_label(machine)
    meta = {
        "kernel": spec.name,
        "machine": label,
        "engine": engine,
        "mechanism": mechanism,
        "metric": metric,
        "precision": resolved.value,
        "k_steps": k_steps,
        "seed": seed,
    }
    runner = default_executor(executor)
    points = _grid(bs_levels, nbs_levels)
    total = 0
    with SweepWriter(
        store_root, meta, segment_rows=segment_rows, overwrite=overwrite
    ) as writer:
        with maybe_span(runner.spans, "streamsweep.run", kernel=spec.name):
            while True:
                batch: list[tuple[float, float]] = []
                for point in points:
                    batch.append(point)
                    if len(batch) >= batch_points:
                        break
                if not batch:
                    break
                jobs = [
                    PointJob(
                        config=spec.config(
                            broadcast_sparsity=bs,
                            nonbroadcast_sparsity=nbs,
                            precision=resolved,
                            k_steps=k_steps,
                            seed=seed,
                        ),
                        machine=machine,
                        metric=metric,
                        engine=engine,
                        mechanism=mechanism,
                    )
                    for bs, nbs in batch
                ]
                values = runner.map(jobs)
                writer.append_batch(
                    [bs for bs, _ in batch],
                    [nbs for _, nbs in batch],
                    values,
                )
                total += len(batch)
    return {
        "fingerprint": writer.fingerprint,
        "kernel": spec.name,
        "machine": label,
        "engine": engine,
        "mechanism": mechanism,
        "metric": metric,
        "points": total,
    }
