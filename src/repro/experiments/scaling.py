"""Extension experiment: multicore scaling and memory saturation.

Sweeps the active core count for one compute-bound conv layer and one
LSTM cell (both under SAVE at realistic sparsity) and reports layer
time and parallel efficiency.  The conv layer scales; the LSTM cell
saturates the shared DRAM early — the structural reason GNMT's speedups
cap below the CNNs' (Sec. VII-A).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAVE_2VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.conv import ConvShape, Phase
from repro.kernels.lstm import LstmShape
from repro.kernels.tiling import Precision
from repro.model.multicore import MulticoreSplit
from repro.model.phases import kernel_tile_for_phase
from repro.model.roofline import layer_traffic_bytes
from repro.model.surface import SurfaceStore

CONV = ConvShape("conv3_2", 128, 128, 28, 28, kernel=3, stride=1, padding=1)
LSTM = LstmShape("gnmt_cell", hidden=1024, input_size=1024, seq_len=30)

CORE_COUNTS = (1, 4, 8, 14, 28)


def _layer_times(layer, lstm: bool, cores: int, store: SurfaceStore,
                 k_steps: int, engine: str = "exact"):
    """(compute time, memory time) for a weak-scaled layer."""
    tile = kernel_tile_for_phase(Phase.FORWARD, lstm=lstm)
    surface = store.get(
        tile, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=k_steps,
        engine=engine,
    )
    bs, nbs = (0.2, 0.9) if lstm else (0.5, 0.0)
    ns_per_fma = surface.interpolate(bs, nbs)
    batch = 3 * cores if lstm else cores
    fmas = layer.macs(Phase.FORWARD, batch=batch) / 16
    traffic = layer_traffic_bytes(layer, Phase.FORWARD, batch)
    split = MulticoreSplit(cores=cores)
    return (
        split.compute_time_ns(fmas, ns_per_fma),
        split.memory_time_ns(traffic),
    )


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the core-count scaling table."""
    ctx = ctx if ctx is not None else RunContext()
    store = ctx.store
    if store is None:
        store = SurfaceStore(executor=ctx.executor)
    elif ctx.executor is not None:
        store.executor = ctx.executor
    k_steps = ctx.resolve_k_steps(16)
    rows: list[tuple] = []
    data: dict[str, dict[int, float]] = {"conv": {}, "lstm": {}}
    for label, layer, lstm in (("conv", CONV, False), ("lstm", LSTM, True)):
        for cores in CORE_COUNTS:
            compute, memory = _layer_times(
                layer, lstm, cores, store, k_steps, ctx.engine
            )
            time = max(compute, memory)
            bound_frac = memory / time
            data[label][cores] = bound_frac
            rows.append(
                (
                    label,
                    cores,
                    f"{time / 1e3:.0f}us",
                    f"{compute / 1e3:.0f}us",
                    f"{memory / 1e3:.0f}us",
                    f"{bound_frac:.0%}",
                )
            )
    return ExperimentReport(
        experiment="scaling",
        title="Weak scaling across cores: conv vs LSTM (extension)",
        headers=("Layer", "Cores", "Time", "Compute", "Memory", "Mem-bound"),
        rows=rows,
        notes=[
            "weak scaling (one sample per core for conv, three sequences "
            "per core for LSTM), SAVE 2 VPUs at realistic sparsity: the "
            "conv layer stays compute bound at 28 cores while the "
            "pruned LSTM cell runs at the shared-DRAM floor — the "
            "structural reason GNMT speedups cap early (Sec. VII-A)",
        ],
        data=data,
    )
