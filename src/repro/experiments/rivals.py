"""SAVE vs. rival skip mechanisms on the shared sparsity grid.

The comparison the related-work section invites: the same N:M
structured-sparse kernel, the same operand data, the same dense
baseline — evaluated under every skip mechanism the repo models
(:data:`repro.rivals.mechanisms.MECHANISMS`).  One executor batch
covers the whole mechanism × (BS, NBS) product, so parallel runs are
bit-identical to serial ones like every other sweep.

Fair-comparison policy (docs/methodology.md): the baseline is a single
dense-pipeline run of the *same kernel* on the paper's baseline
machine.  With SAVE disabled the pipeline's timing is data-independent,
so one baseline point serves every mechanism and every grid point; each
mechanism's speedup is ``baseline_time / mechanism_time``.

The grid axes are *requested* sparsity levels.  For an N:M kernel the
broadcast axis is quantised onto the pattern lattice (2:4 forces at
least 50% broadcast sparsity even at a requested 0.0) — the report
carries the realised level so figures stay honest.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union
from collections.abc import Sequence

from repro.core.config import BASELINE_2VPU, SAVE_2VPU, MachineConfig
from repro.experiments.context import RunContext
from repro.experiments.executor import PointJob, SimExecutor, default_executor
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import PAPER_SWEEP_LEVELS, QUICK_LEVELS
from repro.kernels.library import KernelSpec, get_kernel
from repro.obs import maybe_span
from repro.rivals.mechanisms import MECHANISMS, resolve_mechanism

__all__ = ["compare_mechanisms", "run"]

#: The comparison's default kernel: structured, so every mechanism
#: (including IndexMAC) can run on it.
DEFAULT_KERNEL = "nm24_fwd"


def compare_mechanisms(
    kernel: Union[str, KernelSpec] = DEFAULT_KERNEL,
    mechanisms: Sequence[str] = MECHANISMS,
    levels: Sequence[float] = QUICK_LEVELS,
    machine: MachineConfig = SAVE_2VPU,
    baseline: MachineConfig = BASELINE_2VPU,
    k_steps: int = 24,
    seed: int = 0,
    executor: Optional[SimExecutor] = None,
    store_root: Optional[Union[str, Path]] = None,
    store_overwrite: bool = False,
) -> dict[str, Any]:
    """Sweep every mechanism over the shared grid; one executor batch.

    Returns a dict with the grid ``levels``, the baseline time, and per
    mechanism the speedup grid and raw times.  With ``store_root`` set,
    each mechanism's raw point times are appended to the columnar sweep
    store under its own mechanism-tagged fingerprint (metric
    ``time_ns``), so ``repro query --group-by mechanism`` can aggregate
    the comparison later without rerunning it.
    """
    spec = get_kernel(kernel)
    if not mechanisms:
        raise ValueError("mechanisms must not be empty")
    points = [(float(bs), float(nbs)) for bs in levels for nbs in levels]

    def config(bs: float, nbs: float):
        return spec.config(
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            k_steps=k_steps,
            seed=seed,
        )

    # Validate every mechanism/kernel pairing before simulating
    # anything — a bad pairing should fail in milliseconds.
    for mechanism in mechanisms:
        resolve_mechanism(mechanism, config(0.0, 0.0), machine, "exact")

    jobs = [
        PointJob(
            config=config(0.0, 0.0), machine=baseline,
            engine="exact", mechanism="save",
        )
    ]
    for mechanism in mechanisms:
        for bs, nbs in points:
            jobs.append(
                PointJob(
                    config=config(bs, nbs), machine=machine,
                    engine="exact", mechanism=mechanism,
                )
            )
    runner = default_executor(executor)
    values = runner.map(jobs)
    base_time, point_times = values[0], values[1:]

    speedups: dict[str, dict[tuple[float, float], float]] = {}
    times: dict[str, list[float]] = {}
    with maybe_span(runner.spans, "compare.assemble", kernel=spec.name):
        for m_index, mechanism in enumerate(mechanisms):
            grid: dict[tuple[float, float], float] = {}
            slice_times = point_times[
                m_index * len(points) : (m_index + 1) * len(points)
            ]
            for (bs, nbs), time in zip(points, slice_times):
                grid[(round(bs, 2), round(nbs, 2))] = base_time / time
            speedups[mechanism] = grid
            times[mechanism] = list(slice_times)
    if store_root is not None:
        _record_comparison(
            store_root, spec, machine, mechanisms, points, times,
            k_steps, seed, store_overwrite,
        )
    sample = config(0.0, 0.0)
    return {
        "kernel": spec.name,
        "pattern": getattr(spec, "pattern", None),
        "effective_bs_floor": getattr(
            sample, "effective_broadcast_sparsity", 0.0
        ),
        "levels": [float(level) for level in levels],
        "k_steps": k_steps,
        "seed": seed,
        "mechanisms": list(mechanisms),
        "base_time_ns": base_time,
        "speedups": speedups,
        "times": times,
    }


def _record_comparison(
    store_root: Union[str, Path],
    spec: KernelSpec,
    machine: MachineConfig,
    mechanisms: Sequence[str],
    points: Sequence[tuple[float, float]],
    times: dict[str, list[float]],
    k_steps: int,
    seed: int,
    overwrite: bool,
) -> None:
    """One mechanism-tagged store sweep per mechanism."""
    from repro.model.surface import machine_label
    from repro.store import SweepWriter

    for mechanism in mechanisms:
        meta = {
            "kernel": spec.name,
            "machine": machine_label(machine),
            "engine": "exact",
            "mechanism": mechanism,
            "metric": "time_ns",
            "precision": spec.default_precision.value,
            "k_steps": k_steps,
            "seed": seed,
        }
        with SweepWriter(store_root, meta, overwrite=overwrite) as writer:
            for (bs, nbs), time in zip(points, times[mechanism]):
                writer.append(bs, nbs, time)


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the SAVE-vs-rivals comparison table."""
    ctx = ctx if ctx is not None else RunContext()
    levels = ctx.levels
    if levels is None:
        levels = PAPER_SWEEP_LEVELS if ctx.full_grid else QUICK_LEVELS
    result = compare_mechanisms(
        kernel=DEFAULT_KERNEL,
        levels=levels,
        k_steps=ctx.resolve_k_steps(24),
        executor=ctx.executor,
    )
    rows = []
    for mechanism in result["mechanisms"]:
        for (bs, nbs), speedup in sorted(result["speedups"][mechanism].items()):
            rows.append((mechanism, f"{bs:.0%}", f"{nbs:.0%}", speedup))
    top = max(levels)
    peaks = ", ".join(
        f"{mechanism} {result['speedups'][mechanism][(top, top)]:.2f}x"
        for mechanism in result["mechanisms"]
    )
    notes = [
        f"baseline: dense {result['kernel']} on the 2-VPU baseline "
        f"machine ({result['base_time_ns']:.0f} ns, data-independent)",
        f"peak speedups at ({top:.0%}, {top:.0%}): {peaks}",
    ]
    if result["pattern"]:
        notes.append(
            f"BS axis is quantised onto the {result['pattern']} lattice "
            f"(floor {result['effective_bs_floor']:.0%}); "
            "requested levels shown"
        )
    return ExperimentReport(
        experiment="rivals",
        title=f"Skip-mechanism comparison on {result['kernel']}",
        headers=("Mechanism", "BS", "NBS", "Speedup"),
        rows=rows,
        notes=notes,
        data=result,
    )
