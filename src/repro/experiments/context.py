"""The unified experiment-run API: one frozen context object.

Every experiment runner takes a single :class:`RunContext` instead of a
private mix of keyword arguments.  The context carries *how* to run
(grid resolution, reduction depth, execution backend, observability
hooks) while the experiment itself decides *what* to run.  Unknown
options fail loudly at the :func:`repro.experiments.registry.run_experiment`
boundary — nothing is silently swallowed.

The context is frozen: experiments may not mutate shared run state.
Derive variants with :meth:`RunContext.with_options`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional
from collections.abc import Sequence

if TYPE_CHECKING:  # imports only for annotations; keeps this module cycle-free
    from repro.experiments.executor import SimExecutor
    from repro.model.surface import SurfaceStore
    from repro.obs import MetricsRegistry, SpanRecorder


@dataclass(frozen=True)
class RunContext:
    """Options shared by every experiment runner.

    Args:
        full_grid: sweep the paper's 10%-step sparsity grid instead of
            the quick 4-level grid (slow; figure-quality output).
        k_steps: reduction steps per simulated kernel.  ``None`` means
            "use the experiment's own default" — experiments resolve it
            with :meth:`resolve_k_steps` because their defaults differ
            (kernel sweeps default deeper than surface-backed models).
        executor: execution backend for grid-point simulations; ``None``
            falls back to the serial module default.  Observability
            (metrics registry / trace sink) is configured *on the
            executor* — see :class:`repro.experiments.executor.SimExecutor`.
        panel: which Fig. 14 panel to render (``"a"``..``"d"`` or
            ``"all"``).  Ignored by every other experiment; the CLI
            warns when it would be.
        metrics: shared metrics registry for this run, if the caller
            wants aggregate counters/histograms back.  Conventionally
            the same registry installed on ``executor``.
        spans: host wall-clock :class:`repro.obs.SpanRecorder` for
            phase attribution (build / simulate / merge / report).
            Conventionally the same recorder installed on ``executor``;
            ``run_experiment`` opens an ``experiment:<id>`` span on it
            around each runner.
        store: shared :class:`repro.model.surface.SurfaceStore` so
            surface-backed experiments (fig14/fig16/scaling) can reuse
            each other's interpolation surfaces across one session.
        levels: explicit sparsity levels for kernel sweeps, overriding
            the quick/full grid choice.
        samples: per-layer sparsity samples for Fig. 14's dynamic
            activation model.
        engine: simulation engine tier for every grid point —
            ``"exact"`` (cycle-level pipeline), ``"fast"`` (calibrated
            structure-of-arrays bounds) or ``"analytic"`` (closed-form
            model).  Results and cached surfaces carry the tag, so
            tiers never mix.
        mechanism: skip-mechanism variant for every grid point —
            ``"save"`` (the paper's engine), ``"sparce"`` (scalar
            whole-instruction skip) or ``"indexmac"`` (indexed-MAC over
            N:M kernels).  Rival mechanisms are exact-engine only; see
            :mod:`repro.rivals.mechanisms`.
    """

    full_grid: bool = False
    k_steps: Optional[int] = None
    executor: Optional["SimExecutor"] = None
    panel: str = "all"
    metrics: Optional["MetricsRegistry"] = None
    spans: Optional["SpanRecorder"] = None
    store: Optional["SurfaceStore"] = None
    levels: Optional[Sequence[float]] = None
    samples: int = 5
    engine: str = "exact"
    mechanism: str = "save"

    def resolve_k_steps(self, default: int) -> int:
        """The context's ``k_steps``, or the experiment's ``default``."""
        return default if self.k_steps is None else self.k_steps

    def with_options(self, **changes) -> RunContext:
        """A copy with the given fields replaced (frozen-safe update)."""
        return dataclasses.replace(self, **changes)


#: Field names accepted as ``run_experiment`` overrides.
CONTEXT_FIELDS = tuple(f.name for f in dataclasses.fields(RunContext))

__all__ = ["CONTEXT_FIELDS", "RunContext"]
