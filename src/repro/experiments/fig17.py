"""Fig. 17: broadcast-cache designs on an embedded-broadcast kernel.

SAVE with no B$, B$-with-masks and B$-with-data on the FP32
back-propagation-of-weights kernel of ResNet3_2 (two VPUs), at BS of
0% and 40% across the NBS axis.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAVE_2VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import PAPER_SWEEP_LEVELS, QUICK_LEVELS, sweep_kernel
from repro.kernels.library import get_kernel
from repro.memory.broadcast_cache import BroadcastCacheKind

CONFIGS = {
    "No B$": SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.NONE),
    "B$ w/ masks": SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.MASK),
    "B$ w/ data": SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.DATA),
}


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the Fig. 17 B$-design comparison."""
    ctx = ctx if ctx is not None else RunContext()
    levels = ctx.levels
    if levels is None:
        levels = PAPER_SWEEP_LEVELS if ctx.full_grid else QUICK_LEVELS
    spec = get_kernel("resnet3_2_bwd_weights")
    results = sweep_kernel(
        spec,
        CONFIGS,
        bs_levels=(0.0, 0.4),
        nbs_levels=levels,
        k_steps=ctx.resolve_k_steps(24),
        executor=ctx.executor,
        engine=ctx.engine,
    )
    rows = []
    for label, sweep in results.items():
        for (bs, nbs), speedup in sorted(sweep.speedups.items()):
            rows.append((label, f"{bs:.0%}", f"{nbs:.0%}", speedup))
    return ExperimentReport(
        experiment="fig17",
        title="SAVE speedups with different B$ designs (ResNet3_2 bwd-weights)",
        headers=("Design", "BS", "NBS", "Speedup"),
        rows=rows,
        notes=[
            "expected shape: data >= masks >= none once NBS grows; "
            "without a B$ the embedded pattern stays L1-bandwidth bound",
        ],
        data={label: sweep.speedups for label, sweep in results.items()},
    )
