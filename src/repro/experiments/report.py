"""Plain-text report formatting shared by the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any
from collections.abc import Sequence


@dataclass
class ExperimentReport:
    """A rendered experiment: title, tabular rows, raw data.

    Attributes:
        experiment: id such as "fig15" or "table2".
        title: the paper's caption, abbreviated.
        headers: column names.
        rows: table body (stringifiable cells).
        notes: free-form commentary lines (assumptions, caveats).
        data: machine-readable results for tests and downstream use.
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Format as an aligned text table."""
        headers = [str(h) for h in self.headers]
        body = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered report."""
        print(self.render())


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
