"""Fig. 14: whole-network execution time, normalised to the baseline.

Four panels:

* (a) CNN inference — VGG16 / dense ResNet-50 / pruned ResNet-50, each
  in FP32 and mixed precision; bars baseline / 2 VPUs / 1 VPU / dynamic.
* (b) GNMT inference — pruned, FP32 and mixed precision.
* (c) CNN end-to-end training — adds the per-epoch *static* bar and the
  forward / backward-input / backward-weight / 1st-layer breakdown.
* (d) GNMT end-to-end training.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.tiling import Precision
from repro.model.estimator import NetworkEvaluation
from repro.model.inference import evaluate_inference
from repro.model.networks import GNMT, RESNET50_DENSE, RESNET50_PRUNED, VGG16
from repro.model.surface import COARSE_LEVELS, PAPER_LEVELS, SurfaceStore
from repro.model.training import evaluate_training

CNNS = (VGG16, RESNET50_DENSE, RESNET50_PRUNED)
PRECISIONS = (Precision.FP32, Precision.MIXED)

#: Paper's dynamic-configuration speedups, for side-by-side reporting.
PAPER_DYNAMIC = {
    ("a", "VGG16", "bf16"): 1.68,
    ("a", "ResNet-50", "bf16"): 1.37,
    ("a", "ResNet-50 pruned", "bf16"): 1.59,
    ("b", "GNMT pruned", "bf16"): 1.39,
    ("c", "VGG16", "bf16"): 1.64,
    ("c", "ResNet-50", "bf16"): 1.29,
    ("c", "ResNet-50 pruned", "bf16"): 1.42,
    ("d", "GNMT pruned", "bf16"): 1.28,
}


def _evaluate(panel: str, full_grid: bool, store: SurfaceStore, k_steps: int,
              samples: int, engine: str = "exact") -> list[NetworkEvaluation]:
    levels = PAPER_LEVELS if full_grid else COARSE_LEVELS
    evaluations: list[NetworkEvaluation] = []
    if panel == "a":
        networks, mode = CNNS, "inference"
    elif panel == "b":
        networks, mode = (GNMT,), "inference"
    elif panel == "c":
        networks, mode = CNNS, "training"
    else:
        networks, mode = (GNMT,), "training"
    for network in networks:
        for precision in PRECISIONS:
            if mode == "inference":
                evaluations.append(
                    evaluate_inference(
                        network, precision, store=store, levels=levels,
                        k_steps=k_steps, engine=engine,
                    )
                )
            else:
                evaluations.append(
                    evaluate_training(
                        network,
                        precision,
                        store=store,
                        levels=levels,
                        k_steps=k_steps,
                        samples=samples,
                        engine=engine,
                    )
                )
    return evaluations


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render Fig. 14 (or one panel of it)."""
    ctx = ctx if ctx is not None else RunContext()
    store = ctx.store
    if store is None:
        store = SurfaceStore(executor=ctx.executor)
    elif ctx.executor is not None:
        store.executor = ctx.executor
    k_steps = ctx.resolve_k_steps(16)
    panels = ("a", "b", "c", "d") if ctx.panel == "all" else (ctx.panel,)
    rows = []
    data: dict[str, dict] = {}
    for p in panels:
        for evaluation in _evaluate(
            p, ctx.full_grid, store, k_steps, ctx.samples, ctx.engine
        ):
            key = f"14{p}/{evaluation.network}/{evaluation.precision.value}"
            data[key] = {
                label: result.total_ns
                for label, result in evaluation.configs.items()
            }
            paper = PAPER_DYNAMIC.get((p, evaluation.network, evaluation.precision.value))
            for label, norm, speedup in evaluation.rows():
                rows.append(
                    (
                        f"14{p}",
                        evaluation.network,
                        evaluation.precision.value,
                        label,
                        norm,
                        f"{speedup:.2f}x",
                        f"paper {paper:.2f}x" if paper and label == "dynamic" else "",
                    )
                )
    return ExperimentReport(
        experiment="fig14",
        title="Whole-network execution time normalised to baseline",
        headers=(
            "Panel",
            "Network",
            "Prec",
            "Config",
            "Norm. time",
            "Speedup",
            "Reference",
        ),
        rows=rows,
        notes=[
            "coarse sparsity grid by default; pass full_grid=True for the "
            "paper's 10%-step grid",
        ],
        data=data,
    )
