"""Experiment runners — one per table and figure of the paper.

Every runner returns an :class:`~repro.experiments.report.ExperimentReport`
whose rows mirror the corresponding table/figure, regenerable via::

    python -m repro <experiment>       # e.g. `python -m repro fig15`
    python -m repro list               # available experiments

or through the benchmark suite (``pytest benchmarks/``).
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentReport

__all__ = ["EXPERIMENTS", "ExperimentReport", "run_experiment"]
