"""Experiment runners — one per table and figure of the paper.

Every runner returns an :class:`~repro.experiments.report.ExperimentReport`
whose rows mirror the corresponding table/figure, regenerable via::

    python -m repro <experiment>       # e.g. `python -m repro fig15`
    python -m repro list               # available experiments

or through the benchmark suite (``pytest benchmarks/``).
"""

# Deliberately lazy (PEP 562): the registry imports every runner, and
# runners import repro.model.surface, which itself imports the
# execution layer from this package — an eager import here would make
# that a cycle.
__all__ = ["EXPERIMENTS", "ExperimentReport", "run_experiment"]


def __getattr__(name):
    if name in ("EXPERIMENTS", "run_experiment"):
        from repro.experiments import registry

        return getattr(registry, name)
    if name == "ExperimentReport":
        from repro.experiments.report import ExperimentReport

        return ExperimentReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
