"""Fig. 16: histogram of per-kernel speedup caps.

The speedup *cap* of a kernel is its speedup when sparsity is high
enough that the VPUs are no longer the bottleneck — the paper measures
it per studied kernel and histograms the caps for FP32 / mixed
precision with 2 or 1 VPUs.

We enumerate the distinct GEMM kernels of the evaluated networks
(unique layer-shape × phase combinations, conv and LSTM), evaluate each
at 90%/90% sparsity through the surface + roofline machinery, and
bucket the caps.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, MachineConfig
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.conv import Phase
from repro.kernels.lstm import LstmShape
from repro.kernels.tiling import Precision
from repro.model.multicore import MulticoreSplit
from repro.model.networks import GNMT, RESNET50_DENSE, VGG16
from repro.model.phases import kernel_tile_for_phase
from repro.model.roofline import layer_traffic_bytes
from repro.model.surface import SurfaceStore

BUCKETS = ((1.0, 1.2), (1.2, 1.4), (1.4, 1.6), (1.6, 1.8), (1.8, 2.0), (2.0, 99.0))
BUCKET_LABELS = ("1.0-1.2x", "1.2-1.4x", "1.4-1.6x", "1.6-1.8x", "1.8-2.0x", ">2.0x")

CONFIGS: dict[str, MachineConfig] = {"2 VPUs": SAVE_2VPU, "1 VPU": SAVE_1VPU}


def studied_kernels() -> list[tuple[object, Phase, bool]]:
    """Distinct (layer, phase) kernels across the evaluated networks."""
    kernels: list[tuple[object, Phase, bool]] = []
    seen = set()
    for network in (VGG16, RESNET50_DENSE, GNMT):
        for index, layer in enumerate(network.layers):
            lstm = isinstance(layer, LstmShape)
            phases = (
                (Phase.FORWARD, Phase.BACKWARD_INPUT)
                if lstm
                else (Phase.FORWARD, Phase.BACKWARD_INPUT, Phase.BACKWARD_WEIGHT)
            )
            for phase in phases:
                if phase == Phase.BACKWARD_INPUT and index == 0 and not lstm:
                    continue
                geometry = layer.gemm(phase)
                key = (phase, lstm, geometry.m, geometry.n, geometry.k)
                if key in seen:
                    continue
                seen.add(key)
                kernels.append((layer, phase, lstm))
    return kernels


def _cap(
    layer,
    phase: Phase,
    lstm: bool,
    precision: Precision,
    machine: MachineConfig,
    store: SurfaceStore,
    split: MulticoreSplit,
    k_steps: int,
    high: float = 0.9,
    engine: str = "exact",
) -> float:
    """Speedup at saturating sparsity for one kernel."""
    tile = kernel_tile_for_phase(phase, lstm=lstm)
    batch = 84 if lstm else 28
    element_bytes = 2 if precision == Precision.MIXED else 4
    macs_per_fma = 32 if precision == Precision.MIXED else 16
    fmas = layer.macs(phase, batch=batch) / macs_per_fma
    traffic = layer_traffic_bytes(layer, phase, batch, element_bytes)

    base_surface = store.get(
        tile, precision, BASELINE_2VPU, levels=(0.0,), k_steps=k_steps,
        engine=engine,
    )
    save_surface = store.get(
        tile, precision, machine, levels=(0.0, high), k_steps=k_steps,
        engine=engine,
    )
    base_time = split.layer_time_ns(fmas, base_surface.interpolate(0, 0), traffic)
    save_time = split.layer_time_ns(
        fmas, save_surface.interpolate(high, high), traffic
    )
    return base_time / save_time


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the Fig. 16 speedup-cap histograms."""
    ctx = ctx if ctx is not None else RunContext()
    store = ctx.store
    if store is None:
        store = SurfaceStore(executor=ctx.executor)
    elif ctx.executor is not None:
        store.executor = ctx.executor
    k_steps = ctx.resolve_k_steps(16)
    split = MulticoreSplit()
    kernels = studied_kernels()
    rows = []
    data: dict[str, dict[str, list[int]]] = {}
    geomeans = {}
    for precision in (Precision.FP32, Precision.MIXED):
        for label, machine in CONFIGS.items():
            conv_counts = [0] * len(BUCKETS)
            lstm_counts = [0] * len(BUCKETS)
            caps = []
            for layer, phase, lstm in kernels:
                cap = _cap(
                    layer, phase, lstm, precision, machine, store, split,
                    k_steps, engine=ctx.engine,
                )
                caps.append(cap)
                for b, (low, highb) in enumerate(BUCKETS):
                    if low <= cap < highb or (b == 0 and cap < low):
                        (lstm_counts if lstm else conv_counts)[b] += 1
                        break
            panel = f"{precision.value.upper()} {label}"
            data[panel] = {"conv": conv_counts, "lstm": lstm_counts}
            geomean = float(
                __import__("numpy").exp(
                    __import__("numpy").mean(__import__("numpy").log(caps))
                )
            )
            geomeans[panel] = geomean
            for b, bucket_label in enumerate(BUCKET_LABELS):
                rows.append(
                    (panel, bucket_label, conv_counts[b], lstm_counts[b])
                )
    return ExperimentReport(
        experiment="fig16",
        title="Histograms of per-kernel speedup caps",
        headers=("Panel", "Cap range", "# conv kernels", "# LSTM kernels"),
        rows=rows,
        notes=[
            f"{len(kernels)} distinct kernels studied (paper: 93)",
            "geomean caps: "
            + ", ".join(f"{k}={v:.2f}x" for k, v in geomeans.items())
            + " (paper: FP32 1.39x/1.62x, MP 1.48x/1.77x for 2/1 VPUs)",
        ],
        data={"histograms": data, "geomeans": geomeans, "n_kernels": len(kernels)},
    )
