"""Table I: architecture configuration."""

from __future__ import annotations

from typing import Optional

from repro.core.config import BASELINE_2VPU, SAVE_1VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.memory.dram import DramModel
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.noc import MeshNoc


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the modeled machine's configuration (Table I)."""
    core = BASELINE_2VPU.core
    boosted = SAVE_1VPU.core
    hierarchy = HierarchyConfig()
    noc = MeshNoc()
    dram = DramModel()
    rows = [
        (
            "Core",
            f"{hierarchy.cores} cores, no SMT, {core.rs_entries} RS entries, "
            f"{core.rob_entries} ROB entries, {core.issue_width}-issue, "
            f"1 VPU at {boosted.freq_ghz}GHz or 2 VPUs at {core.freq_ghz}GHz",
        ),
        (
            "B$",
            "32 lines direct-mapped, with data or with masks, 4 read ports",
        ),
        ("L1-D/I", f"{hierarchy.l1_size // 1024}KB/core private, {hierarchy.l1_ways}-way, LRU"),
        (
            "L2",
            f"{hierarchy.l2_size // (1024 * 1024)}MB/core private, inclusive, "
            f"{hierarchy.l2_ways}-way, LRU",
        ),
        (
            "L3",
            f"{hierarchy.l3_slice_size / 1024 / 1024:.3f}MB/core, shared, inclusive, "
            f"{hierarchy.l3_ways}-way, SRRIP, NUCA",
        ),
        ("NoC", f"2D-mesh {noc.width}x{noc.height}, XY routing, {noc.hop_cycles}-cycle hop"),
        (
            "Memory",
            f"{dram.bandwidth_gbps}GB/s BW, {dram.channels} channels, "
            f"{dram.latency_ns:.0f}ns latency",
        ),
    ]
    return ExperimentReport(
        experiment="table1",
        title="Architecture configuration",
        headers=("Component", "Configuration"),
        rows=rows,
        data={
            "cores": hierarchy.cores,
            "rs_entries": core.rs_entries,
            "rob_entries": core.rob_entries,
            "issue_width": core.issue_width,
            "freq_2vpu": core.freq_ghz,
            "freq_1vpu": boosted.freq_ghz,
        },
    )
