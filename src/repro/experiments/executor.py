"""Execution layer: fan independent grid-point simulations out to workers.

Every figure in the reproduction is assembled from hundreds of
*independent* cycle-level simulations — the paper's own methodology
(Sec. VI) is a 2D sparsity grid per kernel.  A :class:`SimExecutor`
turns a batch of picklable :class:`PointJob` work units into results,
either in-process (``jobs=1``, the default — tests and debugging stay
single-process) or across a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is the contract: results always come back in job-index
order, regardless of worker completion order, and each job re-derives
its trace from a seeded config, so a parallel run is bit-identical to a
serial one.

Observability rides on the executor: give a :class:`SimExecutor` a
``metrics`` registry and every simulated point is instrumented with its
*own* per-job registry whose snapshot travels back with the result;
snapshots merge into the shared registry in job-index order on every
backend, so a ``--jobs 8`` run's metrics are bit-identical to a serial
run's.  A ``trace_sink`` forces in-process execution (event streams
interleave nondeterministically across processes and would be useless).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Optional
from collections.abc import Iterable, Sequence

from repro.core.config import MachineConfig
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    SpanRecorder,
    TraceSink,
    maybe_span,
)

#: Environment fallback for the worker count (the CLI's ``--jobs``
#: takes precedence).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Result metrics a job can request from its simulation.
METRIC_TIME_NS = "time_ns"
METRIC_NS_PER_FMA = "ns_per_fma"

#: Types that cross the process-pool boundary (in ``PointJob`` chunks
#: or their results).  Checked by ``repro check`` (process-boundary):
#: each must be a frozen dataclass — transitively, through its field
#: annotations — or be listed in :data:`POOL_PAYLOAD_PICKLABLE`.
POOL_PAYLOAD_TYPES = (
    "PointJob",
    "MachineConfig",
    "GemmKernelConfig",
    "NMKernelConfig",
    "IndexMACConfig",
)

#: Documented escape hatch: types that pickle safely without being
#: frozen dataclasses.  Keep a justification next to each entry.
POOL_PAYLOAD_PICKLABLE: tuple = ()


@dataclass(frozen=True)
class PointJob:
    """One grid-point simulation: a trace config on one machine.

    Frozen and built only from frozen dataclasses, so it pickles
    cleanly across process boundaries.  The trace is regenerated inside
    the worker from the seeded config — traces carry functional memory
    images and are much bigger than their configs.
    """

    # GemmKernelConfig, NMKernelConfig or IndexMACConfig — any frozen
    # config the kernel library has a trace generator for.
    config: Any
    machine: MachineConfig
    metric: str = METRIC_TIME_NS
    #: Engine tier ("exact", "fast", "analytic").  Fast tiers estimate
    #: from the seeded config directly — no trace, no instrumentation.
    engine: str = "exact"
    #: Skip mechanism ("save", "sparce", "indexmac") — resolved to a
    #: (config, machine) transform by :mod:`repro.rivals.mechanisms`
    #: just before simulation.  Rivals are exact-engine only.
    mechanism: str = "save"

    def _resolved(self) -> tuple[Any, MachineConfig]:
        """(config, machine) after applying the mechanism transform."""
        if self.mechanism == "save":
            return self.config, self.machine
        # Lazy for the same reason as the engine imports below: rivals
        # sits above the kernel layer in the import graph.
        from repro.rivals.mechanisms import resolve_mechanism

        return resolve_mechanism(
            self.mechanism, self.config, self.machine, self.engine
        )

    def run(self, obs: Optional[Instrumentation] = None) -> float:
        """Simulate this point in the current process."""
        config, machine = self._resolved()
        if self.engine != "exact":
            # Imported lazily to keep the exact path's import graph
            # unchanged (and repro.fastsim depends on this module's
            # importers, so a module-level import would cycle).
            from repro.fastsim import simulate_config

            result = simulate_config(config, machine, self.engine)
        else:
            # Imported here so workers pay the import once, not per job.
            from repro.core.pipeline import simulate
            from repro.kernels.library import trace_stream

            result = simulate(
                trace_stream(config), machine,
                keep_state=False, obs=obs,
            )
        if self.metric == METRIC_NS_PER_FMA:
            return result.time_ns / result.fma_count
        return result.time_ns

    def run_instrumented(
        self, sink: Optional[TraceSink] = None
    ) -> tuple[float, dict[str, Any]]:
        """Run with a fresh per-job registry; return (value, snapshot).

        A *fresh* registry per job is what makes cross-process merging
        deterministic: each job's snapshot is computed from zero in
        isolation, and the caller folds snapshots together in job-index
        order — identical float-addition grouping on every backend.
        """
        obs = Instrumentation(
            metrics=MetricsRegistry(), sink=sink, mechanism=self.mechanism
        )
        value = self.run(obs)
        return value, obs.snapshot()


def _run_chunk(chunk: list[tuple[int, PointJob]]) -> list[tuple[int, float]]:
    """Worker entry point: run one chunk of (index, job) pairs."""
    return [(index, job.run()) for index, job in chunk]


def _run_chunk_instrumented(
    chunk: list[tuple[int, PointJob]],
) -> list[tuple[int, tuple[float, dict[str, Any]]]]:
    """Worker entry point when metrics are collected."""
    return [(index, job.run_instrumented()) for index, job in chunk]


def merge_indexed(
    chunks: Iterable[Sequence[tuple[int, float]]], total: int
) -> list[float]:
    """Reassemble chunk results into job-index order.

    Chunks may arrive in *any* order (workers complete out of order);
    the output is always ``results[i] == value of job i``.
    """
    results: list[Optional[float]] = [None] * total
    seen = 0
    for chunk in chunks:
        for index, value in chunk:
            if not 0 <= index < total:
                raise ValueError(f"job index {index} outside batch of {total}")
            if results[index] is not None:
                raise ValueError(f"duplicate result for job index {index}")
            results[index] = value
            seen += 1
    if seen != total:
        missing = [i for i, v in enumerate(results) if v is None]
        raise ValueError(f"missing results for job indices {missing[:8]}")
    return results  # type: ignore[return-value]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit value, else ``REPRO_JOBS``, else serial."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


class SimExecutor:
    """Runs batches of :class:`PointJob` serially or across processes.

    Args:
        jobs: worker processes; ``1`` (default) short-circuits to plain
            in-process execution with no pool, no pickling.
        chunksize: jobs per worker submission; defaults to an even
            split targeting ~4 chunks per worker (amortises process
            round-trips while keeping the pool load-balanced).
        metrics: shared registry that accumulates every job's metrics.
            Each job runs against a fresh private registry; snapshots
            are folded into this one in job-index order after the batch
            completes, so parallel and serial runs merge identically.
        trace_sink: event sink for per-cycle traces.  Tracing forces
            in-process execution — interleaved multi-process event
            streams would be nondeterministic and unusable.
        spans: host wall-clock :class:`repro.obs.SpanRecorder`; when
            set, every batch opens a ``simulate`` span (and metric
            merging a ``merge`` span) so runs attribute their time to
            phases.  Spans wrap whole batches, never per-cycle work.
        persistent: keep one worker pool alive across ``map`` calls
            instead of spinning one up per batch.  One-shot experiment
            runs amortise pool startup over a single large batch, so
            they keep the default; a long-lived service calling ``map``
            per micro-batch would otherwise pay process startup on
            every request.  Call :meth:`close` (or use the executor as
            a context manager) to shut the pool down.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunksize: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_sink: Optional[TraceSink] = None,
        spans: Optional[SpanRecorder] = None,
        persistent: bool = False,
    ):
        self.jobs = resolve_jobs(jobs)
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.chunksize = chunksize
        self.metrics = metrics
        self.trace_sink = trace_sink
        self.spans = spans
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimExecutor(jobs={self.jobs}, chunksize={self.chunksize})"

    @property
    def instrumented(self) -> bool:
        return self.metrics is not None or self.trace_sink is not None

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _chunks(
        self, indexed: list[tuple[int, PointJob]]
    ) -> list[list[tuple[int, PointJob]]]:
        size = self.chunksize
        if size is None:
            size = max(1, len(indexed) // (self.jobs * 4))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    def _run_chunks(self, fn, chunks):
        """Fan chunks out to workers; collect in completion order."""
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            futures = [self._pool.submit(fn, chunk) for chunk in chunks]
            return [future.result() for future in as_completed(futures)]
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, chunk) for chunk in chunks]
            return [future.result() for future in as_completed(futures)]

    def close(self) -> None:
        """Shut down the persistent pool (no-op otherwise)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> SimExecutor:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def map(self, jobs: Sequence[PointJob]) -> list[float]:
        """Run a batch; results are in job order on every backend."""
        if not jobs:
            return []
        with maybe_span(
            self.spans, "simulate", points=len(jobs), workers=self.jobs
        ):
            if self.instrumented:
                return self._map_instrumented(jobs)
            if not self.parallel or len(jobs) == 1:
                return [job.run() for job in jobs]
            indexed = list(enumerate(jobs))
            chunks = self._chunks(indexed)
            completed = self._run_chunks(_run_chunk, chunks)
            return merge_indexed(completed, len(jobs))

    def map_timed(
        self, jobs: Sequence[PointJob]
    ) -> tuple[list[float], list[float]]:
        """Like :meth:`map`, plus a per-job wall-clock span list.

        Spans are measured *inside* the worker around each ``job.run()``
        (see :func:`repro.obs.telemetry.run_chunk_timed`), so the serve
        layer's ``sim`` telemetry events report true simulation time for
        each point even when the batch crossed the process-pool
        boundary — not pool round-trip time.  Values come back in job
        order like every other path; ``walls[i]`` pairs with
        ``values[i]``.
        """
        # Lazy import: telemetry is the wall-clock layer, and this
        # module stays inside the no-wallclock determinism scope.
        from repro.obs.telemetry import run_chunk_timed

        if not jobs:
            return [], []
        with maybe_span(
            self.spans, "simulate", points=len(jobs), workers=self.jobs
        ):
            indexed = list(enumerate(jobs))
            if not self.parallel or len(jobs) == 1:
                completed = [run_chunk_timed(indexed)]
            else:
                completed = self._run_chunks(
                    run_chunk_timed, self._chunks(indexed)
                )
            pairs = merge_indexed(completed, len(jobs))
        return [value for value, _ in pairs], [wall for _, wall in pairs]

    def _map_instrumented(self, jobs: Sequence[PointJob]) -> list[float]:
        """Instrumented batch: collect per-job snapshots, merge in order.

        Serial and parallel paths build the *same* list of per-job
        snapshots and fold them identically — one ``merge_snapshot``
        per job, in job-index order — so the shared registry ends up
        bit-for-bit the same regardless of worker count.
        """
        if self.trace_sink is not None or not self.parallel or len(jobs) == 1:
            pairs = [job.run_instrumented(self.trace_sink) for job in jobs]
        else:
            indexed = list(enumerate(jobs))
            chunks = self._chunks(indexed)
            completed = self._run_chunks(_run_chunk_instrumented, chunks)
            pairs = merge_indexed(completed, len(jobs))
        if self.metrics is not None:
            with maybe_span(self.spans, "merge", snapshots=len(pairs)):
                for _, snapshot in pairs:
                    self.metrics.merge_snapshot(snapshot)
        return [value for value, _ in pairs]


#: Module default: serial execution (what every call site gets when no
#: executor is passed).
SERIAL_EXECUTOR = SimExecutor(jobs=1)


def default_executor(executor: Optional[SimExecutor]) -> SimExecutor:
    """Call-site helper: an explicit executor, or the serial default."""
    return executor if executor is not None else SERIAL_EXECUTOR


__all__ = [
    "JOBS_ENV_VAR",
    "METRIC_NS_PER_FMA",
    "METRIC_TIME_NS",
    "PointJob",
    "SERIAL_EXECUTOR",
    "SimExecutor",
    "default_executor",
    "merge_indexed",
    "resolve_jobs",
]
