"""Shared kernel-sweep machinery for the kernel-level figures (15-19).

A sweep runs one named kernel at a grid of sparsity levels under several
machine configurations and reports speedups over the paper's baseline
(two 512-bit VPUs at 1.7 GHz, no SAVE).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional
from collections.abc import Sequence

from repro.core.config import BASELINE_2VPU, MachineConfig
from repro.core.pipeline import simulate
from repro.experiments.executor import PointJob, SimExecutor, default_executor
from repro.kernels.library import KernelSpec, trace_stream
from repro.kernels.tiling import Precision
from repro.obs import maybe_span

#: Default sparsity grid for quick sweeps (the paper uses 10% steps;
#: pass ``full_grid=True`` to experiment runners for that resolution).
QUICK_LEVELS: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)
PAPER_SWEEP_LEVELS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(10))


def kernel_time_ns(
    spec: KernelSpec,
    machine: MachineConfig,
    bs: float,
    nbs: float,
    precision: Optional[Precision] = None,
    k_steps: int = 24,
    seed: int = 0,
) -> float:
    """Simulated execution time of one kernel configuration."""
    trace = trace_stream(
        spec.config(
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            precision=precision,
            k_steps=k_steps,
            seed=seed,
        )
    )
    return simulate(trace, machine, keep_state=False).time_ns


@dataclass
class SweepResult:
    """Speedups over the baseline for one machine configuration."""

    label: str
    #: (bs, nbs) → speedup.
    speedups: dict[tuple[float, float], float]

    def series(self, bs: float) -> list[float]:
        """Speedups along the NBS axis at fixed BS (a Fig. 15/17 line)."""
        return [v for (b, _n), v in sorted(self.speedups.items()) if b == bs]


def sweep_kernel(
    spec: KernelSpec,
    machines: dict[str, MachineConfig],
    bs_levels: Sequence[float],
    nbs_levels: Sequence[float],
    precision: Optional[Precision] = None,
    k_steps: int = 24,
    baseline: MachineConfig = BASELINE_2VPU,
    seed: int = 0,
    executor: Optional[SimExecutor] = None,
    engine: str = "exact",
    mechanism: str = "save",
    store_root: Optional[Path] = None,
    store_overwrite: bool = False,
) -> dict[str, SweepResult]:
    """Sweep one kernel over the sparsity grid under each machine.

    The baseline time is measured once at dense inputs (its time is
    sparsity-independent) and every (machine, bs, nbs) point's speedup
    is relative to it — matching the figures' y-axes.  ``mechanism``
    applies to the machine points only: the baseline is the shared
    dense reference every mechanism's speedup is measured against (the
    fair-comparison policy, docs/methodology.md).

    Every point of the (machine, bs, nbs) product — plus the baseline
    point — is an independent simulation; the whole sweep goes to the
    executor as one batch.  Results return in job order, so a parallel
    sweep's speedup dicts are identical to a serial one's.  ``engine``
    selects the tier for every point, baseline included, so speedup
    ratios never mix tiers.

    With ``store_root`` set, each machine's raw point times are also
    appended to the columnar sweep store (one fingerprint-keyed sweep
    per machine, metric ``time_ns``) so results stay queryable via
    ``repro query`` after the figures are gone.
    """
    jobs: list[PointJob] = [
        PointJob(
            config=spec.config(
                broadcast_sparsity=0.0,
                nonbroadcast_sparsity=0.0,
                precision=precision,
                k_steps=k_steps,
                seed=seed,
            ),
            machine=baseline,
            engine=engine,
        )
    ]
    points = [(bs, nbs) for bs in bs_levels for nbs in nbs_levels]
    for machine in machines.values():
        for bs, nbs in points:
            jobs.append(
                PointJob(
                    config=spec.config(
                        broadcast_sparsity=bs,
                        nonbroadcast_sparsity=nbs,
                        precision=precision,
                        k_steps=k_steps,
                        seed=seed,
                    ),
                    machine=machine,
                    engine=engine,
                    mechanism=mechanism,
                )
            )
    runner = default_executor(executor)
    times = runner.map(jobs)
    base_time, point_times = times[0], times[1:]
    with maybe_span(runner.spans, "sweep.assemble", kernel=spec.name):
        results: dict[str, SweepResult] = {}
        for m_index, label in enumerate(machines):
            speedups: dict[tuple[float, float], float] = {}
            for p_index, (bs, nbs) in enumerate(points):
                time = point_times[m_index * len(points) + p_index]
                speedups[(round(bs, 2), round(nbs, 2))] = base_time / time
            results[label] = SweepResult(label, speedups)
    if store_root is not None:
        _record_sweep(
            store_root, spec, machines, points, point_times,
            precision, k_steps, seed, engine, mechanism, store_overwrite,
        )
    return results


def _record_sweep(
    store_root: Path,
    spec: KernelSpec,
    machines: dict[str, MachineConfig],
    points: Sequence[tuple[float, float]],
    point_times: Sequence[float],
    precision: Optional[Precision],
    k_steps: int,
    seed: int,
    engine: str,
    mechanism: str,
    overwrite: bool,
) -> None:
    """Append one sweep's raw point times to the columnar store."""
    from repro.model.surface import machine_label
    from repro.store import SweepWriter

    resolved = precision if precision is not None else spec.default_precision
    for m_index, machine in enumerate(machines.values()):
        meta = {
            "kernel": spec.name,
            "machine": machine_label(machine),
            "engine": engine,
            "mechanism": mechanism,
            "metric": "time_ns",
            "precision": resolved.value,
            "k_steps": k_steps,
            "seed": seed,
        }
        with SweepWriter(store_root, meta, overwrite=overwrite) as writer:
            for p_index, (bs, nbs) in enumerate(points):
                writer.append(
                    bs, nbs, point_times[m_index * len(points) + p_index]
                )
