"""Extension experiment: the software-transparency validation matrix.

Runs the transparency check (pipeline state ≡ in-order reference state)
across a matrix of kernels × SAVE configurations and reports the
outcome — the machine-checkable form of the paper's "SAVE is
transparent to software" claim.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_1VPU,
    SAVE_2VPU,
    CoalescingScheme,
)
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.library import generate_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.memory.broadcast_cache import BroadcastCacheKind
from repro.validate import check_transparency

MACHINES = {
    "baseline": BASELINE_2VPU,
    "RVC+LWD 2 VPUs": SAVE_2VPU,
    "RVC+LWD 1 VPU": SAVE_1VPU,
    "VC": SAVE_2VPU.with_save(
        coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
    ),
    "HC": SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL),
    "naive": SAVE_2VPU.with_save(coalescing=CoalescingScheme.NAIVE),
    "B$ masks": SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.MASK),
    "no MP technique": SAVE_2VPU.with_save(mixed_precision_technique=False),
}

KERNELS = [
    ("fp32 explicit", RegisterTile(4, 6, BroadcastPattern.EXPLICIT), Precision.FP32),
    ("fp32 embedded", RegisterTile(14, 2, BroadcastPattern.EMBEDDED), Precision.FP32),
    ("fp32 masked", RegisterTile(4, 4, BroadcastPattern.EXPLICIT), Precision.FP32),
    ("mixed explicit", RegisterTile(4, 4, BroadcastPattern.EXPLICIT), Precision.MIXED),
    ("mixed embedded", RegisterTile(8, 2, BroadcastPattern.EMBEDDED), Precision.MIXED),
]


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the transparency validation matrix."""
    ctx = ctx if ctx is not None else RunContext()
    k_steps = ctx.resolve_k_steps(8)
    rows: list[tuple] = []
    failures: dict[str, list[str]] = {}
    checks = 0
    for kernel_label, tile, precision in KERNELS:
        trace = generate_trace(
            GemmKernelConfig(
                name=kernel_label,
                tile=tile,
                k_steps=k_steps,
                precision=precision,
                broadcast_sparsity=0.3,
                nonbroadcast_sparsity=0.5,
                use_write_masks="masked" in kernel_label,
                seed=13,
            )
        )
        for machine_label, machine in MACHINES.items():
            checks += 1
            report = check_transparency(trace, machine)
            status = "OK" if report.transparent else "DIVERGED"
            if not report.transparent:
                failures.setdefault(kernel_label, []).append(machine_label)
            rows.append((kernel_label, machine_label, status))
    return ExperimentReport(
        experiment="validation",
        title="Software-transparency validation matrix",
        headers=("Kernel", "Machine", "Result"),
        rows=rows,
        notes=[f"{checks} checks; every cell compares all registers and memory"],
        data={"checks": checks, "failures": failures},
    )
