"""Export experiment reports to disk (text + JSON).

``python -m repro all --export results/`` writes, per experiment,
``<id>.txt`` (the rendered table) and ``<id>.json`` (the
machine-readable ``data``), plus an ``index.json`` manifest — so a full
reproduction run leaves a reviewable artifact tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List

from repro._version import __version__
from repro.experiments.report import ExperimentReport


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of report data to JSON-compatible types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_report(report: ExperimentReport, directory: Path) -> List[Path]:
    """Write one report's text and JSON files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{report.experiment}.txt"
    json_path = directory / f"{report.experiment}.json"
    text_path.write_text(report.render() + "\n")
    payload = {
        "experiment": report.experiment,
        "title": report.title,
        "headers": list(report.headers),
        "rows": _jsonable(report.rows),
        "notes": list(report.notes),
        "data": _jsonable(report.data),
        "version": __version__,
    }
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return [text_path, json_path]


def export_all(
    reports: Iterable[ExperimentReport], directory: Path
) -> Dict[str, List[str]]:
    """Export several reports and write an ``index.json`` manifest."""
    directory = Path(directory)
    manifest: Dict[str, List[str]] = {}
    for report in reports:
        paths = export_report(report, directory)
        manifest[report.experiment] = [path.name for path in paths]
    (directory / "index.json").write_text(
        json.dumps({"version": __version__, "experiments": manifest}, indent=2)
    )
    return manifest


def load_exported(directory: Path, experiment: str) -> dict:
    """Read back one exported experiment's JSON payload."""
    path = Path(directory) / f"{experiment}.json"
    return json.loads(path.read_text())
