"""Export experiment reports to disk (text + JSON + CSV).

``python -m repro all --export results/`` writes, per experiment,
``<id>.txt`` (the rendered table), ``<id>.json`` (the machine-readable
``data``) and ``<id>.csv`` (the table as spreadsheet-ready rows), plus
an ``index.json`` manifest — so a full reproduction run leaves a
reviewable artifact tree.  When the run collected metrics
(``--metrics`` / an instrumented executor), the merged
:class:`repro.obs.MetricsRegistry` snapshot is flattened into
``metrics.csv`` alongside the reports: one row per instrument with
value / count / mean / percentile columns.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Optional
from collections.abc import Iterable

from repro._version import __version__
from repro.experiments.report import ExperimentReport


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of report data to JSON-compatible types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_report(report: ExperimentReport, directory: Path) -> list[Path]:
    """Write one report's text, JSON and CSV files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{report.experiment}.txt"
    json_path = directory / f"{report.experiment}.json"
    csv_path = directory / f"{report.experiment}.csv"
    text_path.write_text(report.render() + "\n")
    payload = {
        "experiment": report.experiment,
        "title": report.title,
        "headers": list(report.headers),
        "rows": _jsonable(report.rows),
        "notes": list(report.notes),
        "data": _jsonable(report.data),
        "version": __version__,
    }
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([str(h) for h in report.headers])
        for row in report.rows:
            writer.writerow([_jsonable(cell) for cell in row])
    return [text_path, json_path, csv_path]


#: metrics.csv column order (one row per instrument).
METRICS_CSV_COLUMNS = (
    "kind", "name", "value", "count", "mean", "p50", "p95", "min", "max",
)


def export_metrics_csv(snapshot: dict[str, Any], directory: Path) -> Path:
    """Flatten one metrics snapshot into ``metrics.csv``.

    Counters and gauges fill the ``value`` column; histograms fill the
    distribution columns (via :func:`repro.obs.hist_stats`).  Rows are
    sorted by (kind, name), so two exports of the same run are
    byte-identical.
    """
    from repro.obs import hist_stats

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "metrics.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(METRICS_CSV_COLUMNS)
        for name in sorted(snapshot.get("counters", {})):
            writer.writerow(
                ["counter", name, snapshot["counters"][name]] + [""] * 6
            )
        for name in sorted(snapshot.get("gauges", {})):
            writer.writerow(["gauge", name, snapshot["gauges"][name]] + [""] * 6)
        for name in sorted(snapshot.get("histograms", {})):
            stats = hist_stats(snapshot["histograms"][name])
            writer.writerow(
                [
                    "histogram",
                    name,
                    "",
                    stats["count"],
                    round(stats["mean"], 6),
                    stats["p50"],
                    stats["p95"],
                    stats["min"],
                    stats["max"],
                ]
            )
    return path


def export_all(
    reports: Iterable[ExperimentReport],
    directory: Path,
    metrics: Optional[dict[str, Any]] = None,
) -> dict[str, list[str]]:
    """Export several reports and write an ``index.json`` manifest.

    Pass the run's merged metrics snapshot as ``metrics`` to also write
    ``metrics.csv`` (listed in the manifest under ``"metrics"``).
    """
    directory = Path(directory)
    manifest: dict[str, list[str]] = {}
    for report in reports:
        paths = export_report(report, directory)
        manifest[report.experiment] = [path.name for path in paths]
    if metrics is not None:
        manifest["metrics"] = [export_metrics_csv(metrics, directory).name]
    (directory / "index.json").write_text(
        json.dumps({"version": __version__, "experiments": manifest}, indent=2)
    )
    return manifest


def load_exported(directory: Path, experiment: str) -> dict:
    """Read back one exported experiment's JSON payload."""
    path = Path(directory) / f"{experiment}.json"
    return json.loads(path.read_text())
