"""Fig. 15: SAVE speedups on the mixed-precision forward propagation of
ResNet2_2 with two VPUs (a) or one VPU (b), over the NBS × BS grid."""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAVE_1VPU, SAVE_2VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import PAPER_SWEEP_LEVELS, QUICK_LEVELS, sweep_kernel
from repro.kernels.library import get_kernel


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the Fig. 15 speedup grids."""
    ctx = ctx if ctx is not None else RunContext()
    levels = ctx.levels
    if levels is None:
        levels = PAPER_SWEEP_LEVELS if ctx.full_grid else QUICK_LEVELS
    spec = get_kernel("resnet2_2_fwd")
    results = sweep_kernel(
        spec,
        {"2 VPUs @1.7GHz": SAVE_2VPU, "1 VPU @2.1GHz": SAVE_1VPU},
        bs_levels=levels,
        nbs_levels=levels,
        k_steps=ctx.resolve_k_steps(24),
        executor=ctx.executor,
        engine=ctx.engine,
        mechanism=ctx.mechanism,
    )
    rows = []
    for label, sweep in results.items():
        for (bs, nbs), speedup in sorted(sweep.speedups.items()):
            rows.append((label, f"{bs:.0%}", f"{nbs:.0%}", speedup))
    two = results["2 VPUs @1.7GHz"].speedups
    one = results["1 VPU @2.1GHz"].speedups
    top = max(levels)
    return ExperimentReport(
        experiment="fig15",
        title="SAVE speedups on mixed-precision ResNet2_2 forward",
        headers=("Configuration", "BS", "NBS", "Speedup"),
        rows=rows,
        notes=[
            f"2-VPU speedup at max sparsity: {two[(top, top)]:.2f}x "
            "(paper caps near 1.49x)",
            f"1-VPU speedup at max sparsity: {one[(top, top)]:.2f}x "
            "(paper reaches 1.96x)",
            f"1-VPU dense slowdown: {one[(0.0, 0.0)]:.2f}x (paper: 0.71x)",
        ],
        data={"2vpu": two, "1vpu": one, "levels": list(levels)},
    )
