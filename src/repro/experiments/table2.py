"""Table II: SAVE's storage structures at 22 nm.

Sizes are exact arithmetic from the modeled geometry:

* **Temp bookkeeping per VPU** — SAVE must remember, per temp lane and
  per VPU pipeline stage, which RS entry sourced it (Sec. III):
  ``lanes × stages × ceil(log2(RS entries))`` bits.  FP32-only needs 16
  lanes × 4 stages; adding mixed precision needs 32 ML lanes × 6 stages
  — exactly the paper's 56 B and 168 B.
* **B$ with masks** — 32 entries × (53-bit tag/valid + 16-bit zero mask),
  doubling the mask to 32 bits when BF16 lines must be covered (276 B /
  340 B).
* **B$ with data** — 32 entries × (53-bit tag/valid + 64 B line)
  (2260 B, identical for both ISA levels).

Leakage power and access energy are CACTI-7.0-calibrated constants
(we cannot run CACTI offline); the scaling *ratios* follow array size.
"""

from __future__ import annotations

import math

from typing import Optional

from repro.core.config import BASELINE_2VPU
from repro.experiments.context import RunContext
from repro.experiments.report import ExperimentReport

TAG_BITS = 53  # line tag + valid/metadata, as in the paper's accounting
B_CACHE_ENTRIES = 32
LINE_BITS = 64 * 8

#: CACTI 7.0 @22nm calibration points from the paper (leakage mW,
#: access energy nJ) keyed by structure.
CACTI_CALIBRATION = {
    "b$ mask fp32": (0.24, 2.9e-4),
    "b$ mask mixed": (0.29, 3.8e-4),
    "b$ data": (3.2, 1.6e-2),
}


def temp_bookkeeping_bytes(lanes: int, stages: int, rs_entries: int) -> int:
    """Per-VPU temp source-tracking storage (Sec. III)."""
    bits = lanes * stages * math.ceil(math.log2(rs_entries))
    return bits // 8


def b_cache_bytes(payload_bits: int, entries: int = B_CACHE_ENTRIES) -> int:
    """B$ array size for a given per-entry payload."""
    bits = entries * (TAG_BITS + payload_bits)
    return math.ceil(bits / 8)


def run(ctx: Optional[RunContext] = None) -> ExperimentReport:
    """Render the storage-structure accounting (Table II)."""
    rs = BASELINE_2VPU.core.rs_entries
    fp32_lat = BASELINE_2VPU.core.fp32_fma_latency
    mixed_lat = BASELINE_2VPU.core.mixed_fma_latency

    temp_fp32 = temp_bookkeeping_bytes(16, fp32_lat, rs)
    temp_mixed = temp_bookkeeping_bytes(32, mixed_lat, rs)
    mask_fp32 = b_cache_bytes(16)
    mask_mixed = b_cache_bytes(32)
    data_b = b_cache_bytes(LINE_BITS)

    rows = [
        ("T per VPU", f"{temp_fp32}B", "-", "-", f"{temp_mixed}B", "-", "-"),
        (
            "B$ w/ mask",
            f"{mask_fp32}B",
            f"{CACTI_CALIBRATION['b$ mask fp32'][0]}mW",
            f"{CACTI_CALIBRATION['b$ mask fp32'][1]:.1E}nJ",
            f"{mask_mixed}B",
            f"{CACTI_CALIBRATION['b$ mask mixed'][0]}mW",
            f"{CACTI_CALIBRATION['b$ mask mixed'][1]:.1E}nJ",
        ),
        (
            "B$ w/ data",
            f"{data_b}B",
            f"{CACTI_CALIBRATION['b$ data'][0]}mW",
            f"{CACTI_CALIBRATION['b$ data'][1]:.1E}nJ",
            f"{data_b}B",
            f"{CACTI_CALIBRATION['b$ data'][0]}mW",
            f"{CACTI_CALIBRATION['b$ data'][1]:.1E}nJ",
        ),
    ]
    return ExperimentReport(
        experiment="table2",
        title="Storage structures in SAVE modeled at 22nm",
        headers=(
            "Structure",
            "FP32 size",
            "FP32 Pleak",
            "FP32 Eaccess",
            "Mixed size",
            "Mixed Pleak",
            "Mixed Eaccess",
        ),
        rows=rows,
        notes=[
            "sizes are exact arithmetic; leakage/energy are CACTI-7.0-"
            "calibrated constants (no offline CACTI available)",
        ],
        data={
            "temp_fp32_bytes": temp_fp32,
            "temp_mixed_bytes": temp_mixed,
            "b_mask_fp32_bytes": mask_fp32,
            "b_mask_mixed_bytes": mask_mixed,
            "b_data_bytes": data_b,
        },
    )
