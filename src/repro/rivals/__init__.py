"""Structured sparsity and rival skip mechanisms.

SAVE models *unstructured* sparsity skipping; this package grows the
design space it competes in, behind the same kernel/trace/experiment
contracts:

* :mod:`repro.rivals.nm` — N:M structured-sparse kernel generation
  (2:4 and 4:8 patterns) on the shared (BS, NBS) sparsity grid.
* :mod:`repro.rivals.indexmac` — an IndexMAC-style indexed-MAC trace
  schedule over the same structured data.
* :mod:`repro.rivals.mechanisms` — the ``mechanism`` axis: SAVE,
  SparCE, and IndexMAC as (config, machine) transforms on the one
  pipeline model.
* :mod:`repro.rivals.cli` — the ``repro compare`` harness rendering a
  SAVE-vs-rivals figure and summary table.
"""

from repro.rivals.indexmac import IndexMACConfig, generate_indexmac_stream
from repro.rivals.mechanisms import (
    DEFAULT_MECHANISM,
    MECHANISMS,
    MechanismError,
    resolve_mechanism,
    validate_mechanism,
)
from repro.rivals.nm import (
    NM_PATTERNS,
    NMKernelConfig,
    generate_nm_stream,
    nm_level_mask,
    parse_pattern,
)

__all__ = [
    "DEFAULT_MECHANISM",
    "IndexMACConfig",
    "MECHANISMS",
    "MechanismError",
    "NMKernelConfig",
    "NM_PATTERNS",
    "generate_indexmac_stream",
    "generate_nm_stream",
    "nm_level_mask",
    "parse_pattern",
    "resolve_mechanism",
    "validate_mechanism",
]
