"""IndexMAC-style indexed-MAC trace generation for N:M kernels.

IndexMAC (arXiv:2311.07241) adds indexed-MAC instructions to a RISC-V
vector processor: the N:M-compressed weight operand carries a small
index vector per group of M, the hardware gathers the matching
activation elements, and only the N kept levels are multiplied.  The
key *modeling* consequences, mirrored here:

* **compile-time compression** — the instruction stream contains FMAs
  only for kept reduction levels.  A fully-masked reduction step emits
  nothing at all (no B loads, no loop overhead): the compressed operand
  simply does not contain it.
* **per-group index handling** — each group of M levels costs
  ``index_overhead_uops`` scalar µops (index fetch / gather set-up),
  charged once per group regardless of how many of its levels survive.
* **dense issue** — the emitted µops run on the *baseline* pipeline:
  no merge units, no rotation, no broadcast cache.  The mechanism layer
  (:mod:`repro.rivals.mechanisms`) pairs this stream with a
  SAVE-disabled machine.
* **structured patterns only** — the index vector's width is fixed by
  N:M; unstructured sparsity does not fit the encoding, so this
  generator accepts only :class:`repro.rivals.nm.NMKernelConfig`.

Mixed precision packs two reduction levels per step, so a step is
elided only when *both* its levels are masked — a partially-alive pair
executes densely (the VNNI pair is the atom of the schedule).  This is
conservative against IndexMAC, and is noted in the architecture docs.

The functional result is identical to the N:M stream's: elided steps
only ever multiply levels whose A column is zero for every row.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.isa.uops import Uop, scalar_op, vstore, vzero
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import BroadcastPattern
from repro.rivals.nm import NMKernelConfig, nm_builder

__all__ = ["IndexMACConfig", "generate_indexmac_stream"]


@dataclass(frozen=True)
class IndexMACConfig:
    """An N:M kernel scheduled as IndexMAC indexed-MAC µops.

    Wraps the structured kernel it compresses; ``index_overhead_uops``
    is the scalar cost charged per group of M reduction levels.
    """

    nm: NMKernelConfig
    index_overhead_uops: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.nm, NMKernelConfig):
            raise TypeError(
                "IndexMAC models structured patterns only: config must "
                f"be an NMKernelConfig, got {type(self.nm).__name__}"
            )
        if self.index_overhead_uops < 0:
            raise ValueError("index_overhead_uops must be non-negative")

    @property
    def name(self) -> str:
        return f"{self.nm.name}-indexmac"

    @property
    def seed(self) -> int:
        return self.nm.seed


def generate_indexmac_stream(config: IndexMACConfig) -> GeneratorTraceStream:
    """A chunked µop stream with masked-off steps compressed away."""
    nm = config.nm
    builder, mask = nm_builder(nm)
    n, m = nm.nm
    levels_per_step = 2 if builder.mixed else 1
    tile = nm.tile

    def iter_uops() -> Iterator[Uop]:
        for accum in range(tile.accumulators):
            yield vzero(accum)
        for k_step in range(nm.k_steps):
            first_level = k_step * levels_per_step
            if first_level % m == 0:
                group = first_level // m
                for _ in range(config.index_overhead_uops):
                    yield scalar_op(tag=f"index-g{group}")
            covered = mask[first_level : first_level + levels_per_step]
            if not covered.any():
                continue
            for _ in range(nm.scalar_overhead_per_step):
                yield scalar_op(tag=f"loop-k{k_step}")
            if tile.pattern == BroadcastPattern.EXPLICIT:
                yield from builder._emit_step_explicit(k_step)
            else:
                yield from builder._emit_step_embedded(k_step)
        for row in range(tile.rows):
            for j in range(tile.col_vectors):
                yield vstore(builder.acc_reg(row, j), builder.c_addr(row, j))

    kept_steps = sum(
        1
        for k_step in range(nm.k_steps)
        if mask[k_step * levels_per_step : (k_step + 1) * levels_per_step].any()
    )
    meta = dict(builder.trace_meta())
    meta.update(
        pattern=nm.pattern,
        nm=(n, m),
        level_mask=mask,
        effective_broadcast_sparsity=round(1.0 - float(mask.mean()), 6),
        mechanism="indexmac",
        index_overhead_uops=config.index_overhead_uops,
        kept_steps=kept_steps,
    )
    return GeneratorTraceStream(
        name=config.name,
        uop_source=iter_uops,
        memory=builder.memory,
        regions=builder.regions,
        meta=meta,
    )
