"""N:M structured-sparse kernel generation (2:4 and 4:8 patterns).

The related work SAVE competes with (IndexMAC, Sparse Systolic Tensor
Array — see PAPERS.md) exploits *structured* sparsity: at most N of
every M consecutive weights along the reduction dimension are non-zero,
so the hardware can compress the operand and gather its partners with a
small index vector.  This module grows the same GEMM trace family as
:mod:`repro.kernels.gemm` a structured variant:

* the **broadcasted A operand is pruned on an N:M lattice along the
  reduction (k) axis**, with one shared mask per k-level group for the
  whole tile (a weight matrix pruned per input-channel group — the
  layout indexed-MAC hardware consumes);
* the **non-broadcasted B operand keeps the unstructured element
  pruning** of the dense generator, so the (BS, NBS) sparsity grid the
  paper sweeps stays shared between SAVE and its rivals.

A requested broadcast sparsity is *quantised onto the pattern lattice*:
per group of M levels, ``max(M - N, round(s * M))`` levels are zeroed —
never fewer than the pattern's floor of ``1 - N/M`` (a dense matrix is
not 2:4-legal), never more than all of them.  The realised level is
exposed as :attr:`NMKernelConfig.effective_broadcast_sparsity` and in
the stream meta, so figures can label the lattice honestly.

Determinism follows the same seeded-RNG contract as every generator in
the repo: construction consumes ``np.random.default_rng(seed)`` exactly
once (A magnitudes, then B, then the level masks) and µops are then
generated lazily — repeated passes over one stream are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.datatypes import FP32_LANES
from repro.kernels.gemm import GemmKernelConfig, _GemmTraceBuilder
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import Precision, RegisterTile
from repro.sparsity.generators import sparse_matrix

__all__ = [
    "NM_PATTERNS",
    "NMKernelConfig",
    "generate_nm_stream",
    "nm_level_mask",
    "parse_pattern",
]

#: Supported structured-sparsity patterns: name → (N nonzero, M group).
NM_PATTERNS: dict[str, tuple[int, int]] = {
    "2:4": (2, 4),
    "4:8": (4, 8),
}


def parse_pattern(pattern: str) -> tuple[int, int]:
    """``"2:4"`` → ``(2, 4)``; raises ``ValueError`` on unknown patterns."""
    try:
        return NM_PATTERNS[pattern]
    except KeyError:
        known = ", ".join(sorted(NM_PATTERNS))
        raise ValueError(
            f"unknown N:M pattern {pattern!r}; supported: {known}"
        ) from None


def nm_level_mask(
    k_depth: int,
    n: int,
    m: int,
    sparsity: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean keep-mask over ``k_depth`` reduction levels, N:M legal.

    Each full group of ``m`` consecutive levels zeroes
    ``max(m - n, round(sparsity * m))`` of its members (positions drawn
    from ``rng``), so every group carries at most ``n`` non-zero levels
    and at least the requested sparsity.  A partial tail group scales
    the same rule to its length.  ``True`` means the level is kept.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    keep = np.ones(k_depth, dtype=bool)
    for start in range(0, k_depth, m):
        size = min(m, k_depth - start)
        floor_zeros = max(0, size - int(round(n * size / m)))
        zeros = max(floor_zeros, int(round(sparsity * size)))
        zeros = min(zeros, size)
        if zeros:
            victims = rng.choice(size, size=zeros, replace=False)
            keep[start + victims] = False
    return keep


@dataclass(frozen=True)
class NMKernelConfig:
    """Parameters for one N:M structured-sparse GEMM trace.

    Mirrors :class:`repro.kernels.gemm.GemmKernelConfig` field-for-field
    and adds ``pattern``; ``broadcast_sparsity`` is the *requested*
    level, realised on the pattern lattice (see module docstring).
    """

    name: str
    tile: RegisterTile
    k_steps: int
    pattern: str = "2:4"
    precision: Precision = Precision.FP32
    broadcast_sparsity: float = 0.0
    nonbroadcast_sparsity: float = 0.0
    use_write_masks: bool = False
    scalar_overhead_per_step: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        parse_pattern(self.pattern)
        if self.k_steps <= 0:
            raise ValueError("k_steps must be positive")
        for level in (self.broadcast_sparsity, self.nonbroadcast_sparsity):
            if not 0.0 <= level <= 1.0:
                raise ValueError("sparsity levels must be in [0, 1]")

    @property
    def nm(self) -> tuple[int, int]:
        return parse_pattern(self.pattern)

    @property
    def k_depth(self) -> int:
        """Reduction levels covered (2 per step for mixed precision)."""
        return self.k_steps * (2 if self.precision == Precision.MIXED else 1)

    @property
    def effective_broadcast_sparsity(self) -> float:
        """The requested broadcast sparsity quantised onto the lattice."""
        n, m = self.nm
        floor = 1.0 - n / m
        return min(1.0, max(floor, round(self.broadcast_sparsity * m) / m))

    def gemm(self) -> GemmKernelConfig:
        """The dense-family config this kernel shares its layout with."""
        return GemmKernelConfig(
            name=self.name,
            tile=self.tile,
            k_steps=self.k_steps,
            precision=self.precision,
            broadcast_sparsity=self.broadcast_sparsity,
            nonbroadcast_sparsity=self.nonbroadcast_sparsity,
            use_write_masks=self.use_write_masks,
            scalar_overhead_per_step=self.scalar_overhead_per_step,
            seed=self.seed,
        )


def nm_builder(config: NMKernelConfig) -> "tuple[_GemmTraceBuilder, np.ndarray]":
    """``(builder, level_mask)`` for one structured config.

    The builder carries the pruned matrices and the dense layout;
    ``level_mask`` is the shared per-k-level keep mask the IndexMAC
    generator compresses against.
    """
    n, m = config.nm
    tile = config.tile
    rng = np.random.default_rng(config.seed)
    a = sparse_matrix((tile.rows, config.k_depth), 0.0, rng)
    b = sparse_matrix(
        (config.k_depth, tile.col_vectors * FP32_LANES),
        config.nonbroadcast_sparsity,
        rng,
    )
    mask = nm_level_mask(config.k_depth, n, m, config.broadcast_sparsity, rng)
    a = a.copy()
    a[:, ~mask] = 0.0
    return _GemmTraceBuilder(config.gemm(), matrices=(a, b)), mask


def generate_nm_stream(config: NMKernelConfig) -> GeneratorTraceStream:
    """A chunked µop stream for one N:M structured-sparse kernel.

    The instruction stream is the *dense* schedule over the pruned data
    (hardware that cannot compress still fetches and multiplies the
    zeros) — the mechanism variants in :mod:`repro.rivals.mechanisms`
    decide what gets skipped and how.
    """
    builder, mask = nm_builder(config)
    n, m = config.nm
    meta = dict(builder.trace_meta())
    meta.update(
        pattern=config.pattern,
        nm=(n, m),
        level_mask=mask,
        effective_broadcast_sparsity=round(1.0 - float(mask.mean()), 6),
    )
    return GeneratorTraceStream(
        name=config.name,
        uop_source=builder.iter_uops,
        memory=builder.memory,
        regions=builder.regions,
        meta=meta,
    )
