"""The skip-mechanism axis: SAVE and its rivals as machine variants.

A *mechanism* names how a machine exploits sparsity.  Each rival is a
**variant configuration of the existing core/pipeline model** — a
(config, machine) transform applied at the last moment before
simulation — never a forked simulator:

``save``
    The paper's design, unchanged: whatever SAVE features the given
    machine preset enables (merge units, rotation, broadcast cache).
    The identity transform.

``sparce``
    A SparCE-style scalar skip-redundancy baseline (arXiv:1711.06315):
    the core detects fully-zero source registers and skips whole
    instructions, but never coalesces lanes across instructions.
    Modeled as SAVE with :data:`~repro.core.config.CoalescingScheme`
    ``NAIVE`` (whole-instruction skip only), lane-wise dependence off,
    no rotation, no mixed-precision pairing, no broadcast cache, and a
    single merge-check unit.  Works with any kernel family —
    unstructured or N:M.

``indexmac``
    An IndexMAC-style indexed-MAC pipeline (arXiv:2311.07241): the
    N:M-compressed instruction stream of
    :mod:`repro.rivals.indexmac` issued on a SAVE-*disabled* machine
    (dense index-gather issue, no merge/rotation logic).  Structured
    patterns only — requesting it for an unstructured kernel raises
    :class:`MechanismError`.

Fairness policy (see docs/methodology.md): every mechanism sees the
same operand data — the transform may recompress the *schedule* but
never the matrices, so functional results agree across mechanisms and
speedups are measured against one shared baseline.

The fast tier is calibrated against SAVE's exact pipeline only, so
mechanisms other than ``save`` are **exact-engine only**; requesting
them with a fast/analytic engine raises :class:`MechanismError` here,
the single enforcement point every producer (executor, sweeps, serve)
funnels through.
"""

from __future__ import annotations

from repro.core.config import (
    CoalescingScheme,
    MachineConfig,
    SaveConfig,
)
from repro.memory.broadcast_cache import BroadcastCacheKind
from repro.rivals.indexmac import IndexMACConfig
from repro.rivals.nm import NMKernelConfig

__all__ = [
    "DEFAULT_MECHANISM",
    "MECHANISMS",
    "MechanismError",
    "resolve_mechanism",
    "sparce_save_config",
    "validate_mechanism",
]

#: Every mechanism the axis accepts, in canonical (figure) order.
MECHANISMS: tuple[str, ...] = ("save", "sparce", "indexmac")

DEFAULT_MECHANISM = "save"


class MechanismError(ValueError):
    """An invalid mechanism, or one paired with an unsupported config."""


def validate_mechanism(mechanism: str) -> str:
    if mechanism not in MECHANISMS:
        known = ", ".join(MECHANISMS)
        raise MechanismError(
            f"unknown mechanism {mechanism!r}; available: {known}"
        )
    return mechanism


def sparce_save_config() -> SaveConfig:
    """The SaveConfig encoding SparCE's whole-instruction skip."""
    return SaveConfig(
        enabled=True,
        coalescing=CoalescingScheme.NAIVE,
        lane_wise_dependence=False,
        rotation_states=1,
        mixed_precision_technique=False,
        broadcast_cache=BroadcastCacheKind.NONE,
        mgu_count=1,
    )


def resolve_mechanism(
    mechanism: str,
    config: object,
    machine: MachineConfig,
    engine: str = "exact",
) -> tuple[object, MachineConfig]:
    """Transform (config, machine) for one mechanism.

    Returns the pair to hand to the simulator.  ``save`` is the
    identity; rivals are exact-engine only (the fast tier's calibration
    contract covers SAVE alone).
    """
    validate_mechanism(mechanism)
    if mechanism == "save":
        return config, machine
    if engine != "exact":
        raise MechanismError(
            f"mechanism {mechanism!r} supports only the exact engine "
            f"(got {engine!r}): the fast tier is calibrated against "
            "SAVE's pipeline only"
        )
    if mechanism == "sparce":
        from dataclasses import replace

        return config, replace(machine, save=sparce_save_config())
    # indexmac: compress the schedule, disable SAVE in the machine.
    if isinstance(config, IndexMACConfig):
        indexed = config
    elif isinstance(config, NMKernelConfig):
        indexed = IndexMACConfig(nm=config)
    else:
        raise MechanismError(
            "mechanism 'indexmac' models structured patterns only; "
            f"got a {type(config).__name__} (use an N:M kernel such as "
            "nm24_fwd)"
        )
    return indexed, machine.with_save(enabled=False)
