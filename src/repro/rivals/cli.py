"""``repro compare`` — the SAVE-vs-rivals comparison harness.

Sweeps every requested skip mechanism over the shared (BS, NBS) grid
(one executor batch, exact engine), prints the comparison figure and
summary table, and optionally:

* records each mechanism's raw point times into a columnar sweep store
  (``--store``), under mechanism-disjoint fingerprints;
* writes a committed comparison artifact (``--out`` + ``--tag``): a
  deterministic JSON result plus the rendered markdown figure/table.

Results are simulated cycle counts, so the artifact is byte-stable for
a given seed/grid — it diffs meaningfully across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional

__all__ = ["compare_main"]


def _levels(count: int) -> list[float]:
    """``count`` evenly spaced sparsity levels over [0, 0.9]."""
    if count < 2:
        raise ValueError("grid must be >= 2")
    step = 0.9 / (count - 1)
    return [round(i * step, 6) for i in range(count)]


def _jsonable(result: dict[str, Any]) -> dict[str, Any]:
    """The comparison result with tuple-keyed grids flattened."""
    out = dict(result)
    out["speedups"] = {
        mechanism: [
            {"bs": bs, "nbs": nbs, "speedup": value}
            for (bs, nbs), value in sorted(grid.items())
        ]
        for mechanism, grid in result["speedups"].items()
    }
    return out


def compare_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro compare``."""
    parser = argparse.ArgumentParser(
        prog="save-repro compare",
        description=(
            "Compare SAVE against rival skip mechanisms (SparCE, "
            "IndexMAC) on one kernel over a shared sparsity grid."
        ),
    )
    parser.add_argument(
        "--kernel", default="nm24_fwd",
        help=(
            "library kernel name (default: nm24_fwd; must be an N:M "
            "kernel when indexmac is among the mechanisms)"
        ),
    )
    parser.add_argument(
        "--mechanisms", default=None, metavar="M[,M...]",
        help="mechanisms to compare (default: save,sparce,indexmac)",
    )
    parser.add_argument(
        "--grid", type=int, default=4, metavar="N",
        help="N×N requested-sparsity grid over [0, 0.9] (default: 4)",
    )
    parser.add_argument("--k-steps", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="also record per-mechanism sweeps into this sweep store",
    )
    parser.add_argument(
        "--overwrite", action="store_true",
        help="replace existing store sweeps with the same identity",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the comparison artifact (JSON + markdown) here",
    )
    parser.add_argument(
        "--tag", default="compare", metavar="NAME",
        help="artifact file stem under --out (default: compare)",
    )
    parser.add_argument(
        "--no-chart", action="store_true",
        help="print only the summary table, not the ASCII figure",
    )
    args = parser.parse_args(argv)

    from repro.experiments.charts import compare_charts
    from repro.experiments.executor import SimExecutor
    from repro.experiments.report import ExperimentReport
    from repro.experiments.rivals import compare_mechanisms
    from repro.kernels.library import UnknownKernelError
    from repro.rivals.mechanisms import MECHANISMS, MechanismError

    if args.mechanisms is None:
        mechanisms = list(MECHANISMS)
    else:
        mechanisms = [
            m.strip() for m in args.mechanisms.split(",") if m.strip()
        ]
    try:
        levels = _levels(args.grid)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        result = compare_mechanisms(
            kernel=args.kernel,
            mechanisms=mechanisms,
            levels=levels,
            k_steps=args.k_steps,
            seed=args.seed,
            executor=SimExecutor(jobs=args.jobs),
            store_root=args.store,
            store_overwrite=args.overwrite,
        )
    except (UnknownKernelError, MechanismError) as error:
        # KeyError reprs its message in quotes; print the bare text.
        message = error.args[0] if error.args else str(error)
        print(str(message), file=sys.stderr)
        return 2

    top = max(levels)
    rows = []
    for mechanism in result["mechanisms"]:
        grid = result["speedups"][mechanism]
        dense = grid[(0.0, 0.0)]
        peak = grid[(round(top, 2), round(top, 2))]
        mean = sum(grid.values()) / len(grid)
        rows.append((
            mechanism, f"{dense:.2f}x", f"{mean:.2f}x", f"{peak:.2f}x",
        ))
    report = ExperimentReport(
        experiment="compare",
        title=f"Skip-mechanism comparison on {result['kernel']}",
        headers=("Mechanism", "Dense", "Mean", f"Peak ({top:.0%},{top:.0%})"),
        rows=rows,
        notes=[
            f"speedup over the dense baseline "
            f"({result['base_time_ns']:.0f} ns); grid {args.grid}x{args.grid} "
            f"requested levels, k_steps={args.k_steps}, seed={args.seed}",
        ],
        data=result,
    )
    if result["pattern"]:
        report.notes.append(
            f"BS axis quantised onto the {result['pattern']} lattice "
            f"(floor {result['effective_bs_floor']:.0%})"
        )

    chart = compare_charts(result)
    if not args.no_chart:
        print(chart)
        print()
    report.show()

    if args.out is not None:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"{args.tag}.json"
        json_path.write_text(
            json.dumps(_jsonable(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        md_path = out_dir / f"{args.tag}.md"
        md_path.write_text(
            f"# Skip-mechanism comparison: {result['kernel']}\n\n"
            "```\n" + chart + "\n```\n\n"
            "```\n" + report.render() + "\n```\n",
            encoding="utf-8",
        )
        print(f"\nwrote {json_path} and {md_path}")
    return 0
