"""User-facing validation helpers.

SAVE's defining property is *software transparency*: the hardware may
skip, coalesce, rotate and chain-compress, but the architectural result
must be exactly what an in-order machine computes.
:func:`check_transparency` packages the comparison the test suite uses
so downstream users can validate their own traces and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.core.pipeline import SimResult, simulate
from repro.isa.registers import ArchState
from repro.kernels.trace import KernelTrace


@dataclass
class TransparencyReport:
    """Outcome of one transparency check."""

    trace_name: str
    machine_label: str
    transparent: bool
    mismatches: list[str] = field(default_factory=list)
    result: Optional[SimResult] = None

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` with details on any divergence."""
        if not self.transparent:
            details = "; ".join(self.mismatches[:5])
            raise AssertionError(
                f"{self.trace_name} on {self.machine_label} diverged: {details}"
            )


def compare_states(reference: ArchState, state: ArchState) -> list[str]:
    """List every register/memory divergence between two states."""
    mismatches: list[str] = []
    for reg in range(32):
        ref_val = reference.read_vreg(reg)
        got = state.read_vreg(reg)
        if ref_val.shape != got.shape or not np.array_equal(ref_val, got):
            mismatches.append(f"zmm{reg}")
    for kreg in range(8):
        if reference.read_kreg(kreg) != state.read_kreg(kreg):
            mismatches.append(f"k{kreg}")
    ref_mem = reference.memory.snapshot()
    sim_mem = state.memory.snapshot()
    for addr in sorted(set(ref_mem) | set(sim_mem)):
        if np.float32(ref_mem.get(addr, 0.0)) != np.float32(sim_mem.get(addr, 0.0)):
            mismatches.append(f"mem[0x{addr:x}]")
    return mismatches


def check_transparency(
    trace: KernelTrace,
    machine: MachineConfig,
    warm_level: Optional[str] = "l2",
) -> TransparencyReport:
    """Run ``trace`` on ``machine`` and compare against the reference.

    Returns a report rather than raising, so sweeps can collect
    failures; call :meth:`TransparencyReport.raise_if_failed` to assert.
    """
    from repro.model.surface import machine_label

    reference = trace.reference_result()
    result = simulate(trace, machine, warm_level=warm_level)
    mismatches = compare_states(reference, result.final_state)
    return TransparencyReport(
        trace_name=trace.name,
        machine_label=machine_label(machine),
        transparent=not mismatches,
        mismatches=mismatches,
        result=result,
    )
